(** Verified aggregation over authenticated range queries — the paper's
    stated future work ("extend the proposed techniques to support more
    complex queries, such as aggregation"), implemented the natural way: the
    user verifies the range VO as usual (soundness + completeness over the
    accessible records) and then folds the aggregate locally over the
    verified result set. The guarantee inherited from Theorem 7.6 is that
    the aggregate is exactly the aggregate over the accessible records in
    range — no record can be injected, dropped or altered without detection,
    and nothing beyond accessible records influences (or is revealed by) the
    value. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  module Ap2g : module type of Ap2g.Make (P)
  module Vo : module type of Vo.Make (P)

  type 'a verified = { value : 'a; over : int (** records aggregated *) }

  val count :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Ap2g.Abs.mvk ->
    tree_universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    Vo.t ->
    (int verified, Vo.error) result
  (** Verified COUNT of accessible records in range. *)

  val fold :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Ap2g.Abs.mvk ->
    tree_universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    extract:(Record.t -> 'a option) ->
    combine:('b -> 'a -> 'b) ->
    init:'b ->
    Vo.t ->
    ('b verified, Vo.error) result
  (** General verified fold; records whose payload fails to [extract] are
      skipped (but still counted in [over] as verified results). *)

  val sum :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Ap2g.Abs.mvk ->
    tree_universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    extract:(Record.t -> float option) ->
    Vo.t ->
    (float verified, Vo.error) result

  val min_max :
    ?batch:Zkqac_hashing.Drbg.t ->
    mvk:Ap2g.Abs.mvk ->
    tree_universe:Zkqac_policy.Universe.t ->
    ?hierarchy:Zkqac_policy.Hierarchy.t ->
    user:Zkqac_policy.Attr.Set.t ->
    query:Box.t ->
    extract:(Record.t -> float option) ->
    Vo.t ->
    ((float * float) option verified, Vo.error) result
end
