(* AES-128 per FIPS 197.

   Tables are computed at module load from first principles (GF(2^8) log /
   antilog with generator 3, then the affine transform), which removes any
   chance of a transcription error in the 256-entry S-box. *)

let xtime b =
  let b2 = b lsl 1 in
  if b2 land 0x100 <> 0 then (b2 lxor 0x1b) land 0xff else b2

let gmul a b =
  let acc = ref 0 in
  let a = ref a and b = ref b in
  for _ = 0 to 7 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let sbox, inv_sbox =
  let s = Array.make 256 0 in
  let si = Array.make 256 0 in
  (* Multiplicative inverse table via log/antilog with generator 3. *)
  let log = Array.make 256 0 and alog = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    alog.(i) <- !x;
    log.(!x) <- i;
    x := gmul !x 3
  done;
  let inv v = if v = 0 then 0 else alog.((255 - log.(v)) mod 255) in
  let rotl8 v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
  for v = 0 to 255 do
    let b = inv v in
    let t = b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63 in
    s.(v) <- t;
    si.(t) <- v
  done;
  (s, si)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = { rk : int array array (* 11 round keys of 16 bytes *) }

let expand_key keystr =
  if String.length keystr <> 16 then invalid_arg "Aes128.expand_key: need 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code keystr.[4 * i] lsl 24)
      lor (Char.code keystr.[(4 * i) + 1] lsl 16)
      lor (Char.code keystr.[(4 * i) + 2] lsl 8)
      lor Char.code keystr.[(4 * i) + 3]
  done;
  let sub_word v =
    (sbox.((v lsr 24) land 0xff) lsl 24)
    lor (sbox.((v lsr 16) land 0xff) lsl 16)
    lor (sbox.((v lsr 8) land 0xff) lsl 8)
    lor sbox.(v land 0xff)
  in
  let rot_word v = ((v lsl 8) lor (v lsr 24)) land 0xFFFFFFFF in
  for i = 4 to 43 do
    let t = w.(i - 1) in
    let t = if i mod 4 = 0 then sub_word (rot_word t) lxor (rcon.((i / 4) - 1) lsl 24) else t in
    w.(i) <- w.(i - 4) lxor t
  done;
  let rk =
    Array.init 11 (fun r ->
        Array.init 16 (fun b ->
            let word = w.((r * 4) + (b / 4)) in
            (word lsr (8 * (3 - (b mod 4)))) land 0xff))
  in
  { rk }

let add_round_key state rk = Array.iteri (fun i _ -> state.(i) <- state.(i) lxor rk.(i)) state

(* State layout: state.(4*c + r) is row r, column c (column-major bytes,
   matching the byte order of the input block). *)

let sub_bytes state = Array.iteri (fun i v -> state.(i) <- sbox.(v)) state
let inv_sub_bytes state = Array.iteri (fun i v -> state.(i) <- inv_sbox.(v)) state

let shift_rows state =
  let t = Array.copy state in
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * c) + r) <- t.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows state =
  let t = Array.copy state in
  for c = 0 to 3 do
    for r = 0 to 3 do
      state.((4 * ((c + r) mod 4)) + r) <- t.((4 * c) + r)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) and a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    state.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.((4 * c) + 1) and a2 = state.((4 * c) + 2) and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let encrypt_block key block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: need 16 bytes";
  let state = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key state key.rk.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state key.rk.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state key.rk.(10);
  String.init 16 (fun i -> Char.chr state.(i))

let decrypt_block key block =
  if String.length block <> 16 then invalid_arg "Aes128.decrypt_block: need 16 bytes";
  let state = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key state key.rk.(10);
  inv_shift_rows state;
  inv_sub_bytes state;
  for round = 9 downto 1 do
    add_round_key state key.rk.(round);
    inv_mix_columns state;
    inv_shift_rows state;
    inv_sub_bytes state
  done;
  add_round_key state key.rk.(0);
  String.init 16 (fun i -> Char.chr state.(i))

let ctr ~key ~nonce msg =
  if String.length nonce > 16 then invalid_arg "Aes128.ctr: nonce too long";
  let k = expand_key key in
  let n = String.length msg in
  let out = Bytes.create n in
  let block = Bytes.make 16 '\000' in
  Bytes.blit_string nonce 0 block 0 (min 12 (String.length nonce));
  let nblocks = (n + 15) / 16 in
  for i = 0 to nblocks - 1 do
    for b = 0 to 3 do
      Bytes.set block (12 + b) (Char.chr ((i lsr (8 * (3 - b))) land 0xff))
    done;
    let ks = encrypt_block k (Bytes.to_string block) in
    let lo = i * 16 in
    let len = min 16 (n - lo) in
    for j = 0 to len - 1 do
      Bytes.set out (lo + j) (Char.chr (Char.code msg.[lo + j] lxor Char.code ks.[j]))
    done
  done;
  Bytes.to_string out
