lib/symmetric/aes128.mli:
