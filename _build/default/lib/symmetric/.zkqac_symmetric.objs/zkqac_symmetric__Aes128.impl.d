lib/symmetric/aes128.ml: Array Bytes Char String
