(** AES-128 (FIPS 197) block cipher and CTR-mode stream encryption.

    This is the "traditional one-key cipher" of Algorithm 1: the SP encrypts
    each query result + VO under a fresh AES key, and that key is wrapped with
    CP-ABE under the AND of the user's claimed roles. The S-box is derived
    from the GF(2^8) inverse + affine map rather than transcribed, and the
    implementation is validated against the FIPS 197 vector in tests. *)

type key

val expand_key : string -> key
(** @raise Invalid_argument unless the key is exactly 16 bytes. *)

val encrypt_block : key -> string -> string
(** Encrypt one 16-byte block. *)

val decrypt_block : key -> string -> string

val ctr : key:string -> nonce:string -> string -> string
(** CTR-mode keystream XOR: encryption and decryption are the same
    operation. [nonce] must be 16 bytes or fewer (zero-padded; the final
    4 bytes are reserved for the counter). *)
