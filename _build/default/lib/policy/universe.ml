type t = { set : Attr.Set.t }

let create roles =
  List.iter
    (fun r ->
      if not (Attr.is_valid r) then invalid_arg ("Universe.create: invalid role " ^ r);
      if Attr.equal r Attr.pseudo_role then
        invalid_arg "Universe.create: the pseudo role is implicit")
    roles;
  { set = Attr.Set.add Attr.pseudo_role (Attr.set_of_list roles) }

let attrs t = t.set
let mem t a = Attr.Set.mem a t.set
let size t = Attr.Set.cardinal t.set
let to_list t = Attr.Set.elements t.set

let validate_user t user =
  if Attr.Set.mem Attr.pseudo_role user then
    invalid_arg "Universe.validate_user: no user holds the pseudo role";
  Attr.Set.iter
    (fun a ->
      if not (Attr.Set.mem a t.set) then
        invalid_arg ("Universe.validate_user: unknown role " ^ a))
    user

let missing t ~user =
  validate_user t user;
  Attr.Set.diff t.set user

let super_policy t ~user = Expr.of_attrs_or (Attr.Set.elements (missing t ~user))

let roles ~prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)
