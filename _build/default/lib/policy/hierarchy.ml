type t = { parent : (Attr.t, Attr.t) Hashtbl.t }

let flat = { parent = Hashtbl.create 1 }

let create edges =
  let parent = Hashtbl.create (List.length edges) in
  List.iter
    (fun (child, par) ->
      if Hashtbl.mem parent child then
        invalid_arg ("Hierarchy.create: two parents for " ^ child);
      Hashtbl.add parent child par)
    edges;
  (* Reject cycles by walking every chain with a step bound. *)
  let n = Hashtbl.length parent in
  Hashtbl.iter
    (fun child _ ->
      let rec walk a steps =
        if steps > n then invalid_arg "Hierarchy.create: cycle"
        else
          match Hashtbl.find_opt parent a with
          | None -> ()
          | Some p -> walk p (steps + 1)
      in
      walk child 0)
    parent;
  { parent }

let edges t =
  List.sort compare (Hashtbl.fold (fun c p acc -> (c, p) :: acc) t.parent [])

let parents t a =
  let rec go a acc =
    match Hashtbl.find_opt t.parent a with
    | None -> List.rev acc
    | Some p -> go p (p :: acc)
  in
  go a []

let close_user t user =
  Attr.Set.fold
    (fun a acc -> List.fold_left (fun acc p -> Attr.Set.add p acc) acc (parents t a))
    user user

let augment_policy t expr =
  let dnf = Expr.to_dnf expr in
  let augmented =
    List.map
      (fun clause ->
        Attr.Set.fold
          (fun a acc ->
            List.fold_left (fun acc p -> Attr.Set.add p acc) acc (parents t a))
          clause clause)
      dnf
  in
  Expr.of_dnf augmented

let reduce_missing t missing =
  Attr.Set.filter
    (fun a -> not (List.exists (fun p -> Attr.Set.mem p missing) (parents t a)))
    missing

let super_policy t universe ~user =
  let user = close_user t user in
  let missing = Universe.missing universe ~user in
  Expr.of_attrs_or (Attr.Set.elements (reduce_missing t missing))
