(** The AP²kd-tree split objective and Algorithm 7 (Appendix D).

    Given the access policies of records ordered along the splitting
    dimension, choose the split point minimizing
    [f(Υ_l, Υ_r) = |X_l ∩ X_r|], where [X] is the set of DNF clauses — i.e.
    make it as unlikely as possible that one user can see into both
    half-spaces, maximizing pruning. *)

val objective : Expr.t list -> Expr.t list -> int
(** [f] for the two half-space policy groups. *)

val split : Expr.t array -> int
(** Algorithm 7 verbatim: returns [x] meaning records [0..x-1] go left and
    [x..n-1] go right (1 <= x <= n-1). @raise Invalid_argument if fewer than
    2 policies. *)

val split_exhaustive : Expr.t array -> int
(** Brute-force argmin of the objective, used to evaluate how close the
    paper's linear-time recursion gets (ablation bench). *)
