(** Attributes (a.k.a. roles — the paper uses the terms interchangeably).

    An attribute is a non-empty name not containing policy syntax characters.
    The distinguished pseudo role [Role_∅] (Section 5) is an attribute that no
    user ever possesses; it is the access policy of pseudo (non-existent)
    records, making "no such record" and "record you may not see"
    indistinguishable. *)

type t = string

val pseudo_role : t
(** The paper's [Role_∅]. Possessed by no user. *)

val is_valid : t -> bool
(** Usable in policies: non-empty, no '&' '|' '(' ')' ',' or whitespace. *)

val compare : t -> t -> int
val equal : t -> t -> bool

module Set : Set.S with type elt = t

val set_of_list : t list -> Set.t
