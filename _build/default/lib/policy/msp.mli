(** Monotone span programs (Definition 5.3 / Algorithm 5) and the predicate
    relaxation purge step (Algorithm 6).

    The recursive insertion construction is used: a leaf contributes the 1x1
    matrix [1]; OR children share their parent's first column; a binary AND
    gate contributes the gadget rows [(1, -1)] / [(0, 1)] over a fresh column.
    N-ary ANDs are folded to binary internally. Entries are in {-1, 0, 1}.

    Two properties are relied on (and property-tested against a Gaussian-
    elimination oracle):

    - Span semantics: [Υ(A) = 1] iff rows labelled by [A] span [e1], and the
      satisfying combination {!satisfying_rows} uses only 0/1 coefficients;
    - Purge semantics: whenever [Υ(𝔸∖A') = 0] there is a column subset
      [T ∋ 0] whose row-sums are 1 exactly on a set of rows labelled within
      [A'] and 0 elsewhere — this is what lets [ABS.Relax] rebuild a
      signature on the super-policy [∨_{a∈A'} a] out of signature components
      without the signing key. *)

type t = {
  rows : int;
  cols : int;
  matrix : int array array;  (** [rows x cols], entries in \{-1, 0, 1\} *)
  labels : Attr.t array;     (** row labelling function u : [rows] -> attrs *)
}

val build : Expr.t -> t
(** Algorithm 5. *)

val satisfying_rows : t -> Expr.t -> Attr.Set.t -> int array option
(** [satisfying_rows msp policy attrs] is the 0/1 vector [v] of
    Definition 5.3 with [v * M = e1] and [v_i = 0] whenever
    [labels.(i) ∉ attrs]; [None] iff the policy rejects [attrs].
    [msp] must be [build policy]. *)

type purge_result = {
  kept_rows : int list;  (** rows of the relaxed signature, in row order *)
  kept_cols : int list;  (** column subset T (always contains column 0) *)
}

val purge : Expr.t -> keep:Attr.Set.t -> purge_result option
(** Algorithm 6: [purge policy ~keep:a'] succeeds iff [Υ(𝔸∖A') = 0]
    (equivalently: every satisfying set intersects [A']), returning the rows
    to keep (all labelled within [A']) and the column subset [T]. [None]
    means relaxation to [∨_{a∈A'} a] is impossible. *)

val check_purge_condition : Expr.t -> universe:Attr.Set.t -> keep:Attr.Set.t -> bool
(** The semantic condition [Υ(𝔸∖A') = 0] that {!purge} realizes, evaluated
    directly; exposed for testing and for SP-side sanity checks. *)
