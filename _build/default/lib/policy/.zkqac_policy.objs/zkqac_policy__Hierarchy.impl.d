lib/policy/hierarchy.ml: Attr Expr Hashtbl List Universe
