lib/policy/expr.ml: Array Attr Format List Printf Stdlib String Zkqac_rng
