lib/policy/kd_split.mli: Expr
