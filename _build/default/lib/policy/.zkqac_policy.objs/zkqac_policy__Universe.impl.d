lib/policy/universe.ml: Attr Expr List Printf
