lib/policy/universe.mli: Attr Expr
