lib/policy/kd_split.ml: Array Attr Expr List Set String
