lib/policy/hierarchy.mli: Attr Expr Universe
