lib/policy/attr.ml: List Set String
