lib/policy/attr.mli: Set
