lib/policy/msp.ml: Array Attr Expr List Option Stdlib
