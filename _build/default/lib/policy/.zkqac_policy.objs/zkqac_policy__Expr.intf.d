lib/policy/expr.mli: Attr Format Zkqac_rng
