lib/policy/msp.mli: Attr Expr
