(** The global access role universe 𝔸 and super access policies.

    The universe always contains the pseudo role [Role_∅], so that pseudo
    records' policies are well-formed and every user's super policy
    (Definition 5.2) includes it. *)

type t

val create : Attr.t list -> t
(** Builds 𝔸 from the given roles plus [Attr.pseudo_role]. Duplicates are
    merged. @raise Invalid_argument if any role is invalid or if a role
    equals the pseudo role. *)

val attrs : t -> Attr.Set.t
val mem : t -> Attr.t -> bool
val size : t -> int
val to_list : t -> Attr.t list

val validate_user : t -> Attr.Set.t -> unit
(** @raise Invalid_argument if the set contains the pseudo role or roles
    outside the universe — no user may hold either. *)

val missing : t -> user:Attr.Set.t -> Attr.Set.t
(** 𝔸 ∖ A: the roles the user does not hold (always contains Role_∅). *)

val super_policy : t -> user:Attr.Set.t -> Expr.t
(** The weakest policy the user still fails: [∨_{a ∈ 𝔸∖A} a]
    (Definition 5.2). *)

val roles : prefix:string -> int -> Attr.t list
(** [roles ~prefix n] is the conventional role naming [prefix0 .. prefix(n-1)]
    used by generators and benches. *)
