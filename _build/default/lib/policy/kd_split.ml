(* Clause sets are compared by canonical string keys. *)
module Clause_set = Set.Make (String)

let clause_key c = String.concat "&" (Attr.Set.elements c)

let clauses_of policies =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc c -> Clause_set.add (clause_key c) acc)
        acc (Expr.to_dnf p))
    Clause_set.empty policies

let objective left right =
  Clause_set.cardinal (Clause_set.inter (clauses_of left) (clauses_of right))

let prefix_clauses policies =
  (* prefix.(i) = clauses of policies[0..i-1]. *)
  let n = Array.length policies in
  let prefix = Array.make (n + 1) Clause_set.empty in
  for i = 0 to n - 1 do
    prefix.(i + 1) <-
      List.fold_left
        (fun acc c -> Clause_set.add (clause_key c) acc)
        prefix.(i)
        (Expr.to_dnf policies.(i))
  done;
  prefix

let suffix_clauses policies =
  let n = Array.length policies in
  let suffix = Array.make (n + 1) Clause_set.empty in
  for i = n - 1 downto 0 do
    suffix.(i) <-
      List.fold_left
        (fun acc c -> Clause_set.add (clause_key c) acc)
        suffix.(i + 1)
        (Expr.to_dnf policies.(i))
  done;
  suffix

(* Algorithm 7, literally: a linear recursion that extends the best split of
   the first n-1 policies by comparing it with splitting just before the
   last one. *)
let split policies =
  let n = Array.length policies in
  if n < 2 then invalid_arg "Kd_split.split: need >= 2 policies";
  let x_set i j =
    (* clauses of policies[i..j-1] *)
    clauses_of (Array.to_list (Array.sub policies i (j - i)))
  in
  let rec go n =
    if n = 2 then 1
    else if n = 3 then begin
      let x1 = x_set 0 1 and x2 = x_set 1 2 and x3 = x_set 2 3 in
      if Clause_set.cardinal (Clause_set.inter x1 x2)
         < Clause_set.cardinal (Clause_set.inter x2 x3)
      then 1
      else 2
    end
    else begin
      let x' = go (n - 1) in
      let a =
        Clause_set.cardinal (Clause_set.inter (x_set 0 x') (x_set x' (n - 1)))
      in
      let b = Clause_set.cardinal (Clause_set.inter (x_set x' (n - 1)) (x_set (n - 1) n)) in
      if a < b then x' else n - 1
    end
  in
  go n

let split_exhaustive policies =
  let n = Array.length policies in
  if n < 2 then invalid_arg "Kd_split.split_exhaustive: need >= 2 policies";
  let prefix = prefix_clauses policies in
  let suffix = suffix_clauses policies in
  let best = ref 1 in
  let best_f = ref max_int in
  for x = 1 to n - 1 do
    let f = Clause_set.cardinal (Clause_set.inter prefix.(x) suffix.(x)) in
    if f < !best_f then begin
      best_f := f;
      best := x
    end
  done;
  !best
