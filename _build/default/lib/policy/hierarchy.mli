(** Hierarchical role assignment (Section 8.1).

    In a role hierarchy, holding a role implies holding its ancestors
    (a professor of university A is a member of university A), so *lacking* a
    role implies lacking all of its descendants. Two consequences the paper
    exploits:

    - record policies are augmented so that every clause mentioning a role
      also requires its ancestors (the paper's [Role_A ∧ Role_{A,P}]);
    - the user's inaccessible predicate shrinks to the *maximal* missing
      roles, since missing descendants are implied. *)

type t

val create : (Attr.t * Attr.t) list -> t
(** [(child, parent)] edges. @raise Invalid_argument on cycles or on a child
    with two parents. *)

val flat : t
(** The trivial hierarchy (no edges): reduces nothing. *)

val edges : t -> (Attr.t * Attr.t) list
(** The [(child, parent)] edges, in deterministic order (for serialization). *)

val parents : t -> Attr.t -> Attr.t list
(** Ancestor chain, nearest first (empty for roots). *)

val close_user : t -> Attr.Set.t -> Attr.Set.t
(** Add all implied ancestors to a user's role set. *)

val augment_policy : t -> Expr.t -> Expr.t
(** DNF-normalize and extend every clause with the ancestors of its roles. *)

val reduce_missing : t -> Attr.Set.t -> Attr.Set.t
(** Keep only roles with no missing ancestor: the reduced inaccessible set
    over which the super policy is formed. *)

val super_policy : t -> Universe.t -> user:Attr.Set.t -> Expr.t
(** The reduced super policy of Section 8.1: OR over
    [reduce_missing (𝔸 ∖ close_user user)]. *)
