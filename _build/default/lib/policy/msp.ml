type t = {
  rows : int;
  cols : int;
  matrix : int array array;
  labels : Attr.t array;
}

(* Internal binary form: AND gates are folded to binary so that a single
   2-row gadget covers them; OR stays n-ary (all children share the head
   column, no gadget needed). *)
type bin =
  | BLeaf of Attr.t
  | BOr of bin list
  | BAnd of bin * bin

let rec to_bin_expanded (e : Expr.t) =
  match e with
  | Expr.Leaf a -> BLeaf a
  | Expr.Or xs -> BOr (List.map to_bin_expanded xs)
  | Expr.And [] -> invalid_arg "Msp: empty And"
  | Expr.And [ x ] -> to_bin_expanded x
  | Expr.And (x :: rest) -> BAnd (to_bin_expanded x, to_bin_expanded (Expr.And rest))
  | Expr.Threshold _ -> invalid_arg "Msp: unexpanded threshold"

(* Threshold gates are compiled away first, so the span program only ever
   sees AND/OR structure (and the purge/satisfying traversals agree). *)
let to_bin e = to_bin_expanded (Expr.expand_thresholds e)

(* The three traversals below must allocate gate columns and row indices in
   the same DFS order; they share this helper discipline:
   - row indices are assigned at leaves, in DFS order;
   - an AND gate allocates its fresh column *before* descending. *)

let build expr =
  let bin = to_bin expr in
  let next_col = ref 1 in
  let rows = ref [] in
  let rec go node head =
    match node with
    | BLeaf a -> rows := (a, head) :: !rows
    | BOr children -> List.iter (fun c -> go c head) children
    | BAnd (c1, c2) ->
      let g = !next_col in
      incr next_col;
      go c1 (((g, -1) :: head));
      go c2 [ (g, 1) ]
  in
  go bin [ (0, 1) ];
  let row_list = List.rev !rows in
  let nrows = List.length row_list in
  let ncols = !next_col in
  let matrix = Array.make_matrix nrows ncols 0 in
  let labels = Array.make nrows "" in
  List.iteri
    (fun i (a, head) ->
      labels.(i) <- a;
      List.iter (fun (c, v) -> matrix.(i).(c) <- matrix.(i).(c) + v) head)
    row_list;
  { rows = nrows; cols = ncols; matrix; labels }

let satisfying_rows msp expr attrs =
  let bin = to_bin expr in
  let next_row = ref 0 in
  let rec go node =
    match node with
    | BLeaf a ->
      let idx = !next_row in
      incr next_row;
      if Attr.Set.mem a attrs then Some [ idx ] else None
    | BOr children ->
      (* Traverse every child to keep the row counter in sync, then keep the
         first satisfying one. *)
      let results = List.map go children in
      List.find_opt Option.is_some results |> Option.join
    | BAnd (c1, c2) ->
      let r1 = go c1 in
      let r2 = go c2 in
      (match (r1, r2) with Some a, Some b -> Some (a @ b) | _, _ -> None)
  in
  match go bin with
  | None -> None
  | Some selected ->
    assert (!next_row = msp.rows);
    let v = Array.make msp.rows 0 in
    List.iter (fun i -> v.(i) <- 1) selected;
    Some v

type purge_result = { kept_rows : int list; kept_cols : int list }

let purge expr ~keep =
  let bin = to_bin expr in
  let next_col = ref 1 in
  let next_row = ref 0 in
  let rec go node =
    match node with
    | BLeaf a ->
      let idx = !next_row in
      incr next_row;
      if Attr.Set.mem a keep then Some ([ idx ], []) else None
    | BOr children ->
      (* An OR node relaxes only if every child does (Algorithm 6: flag is
         the AND of child flags); all kept rows and columns accumulate. *)
      let results = List.map go children in
      if List.for_all Option.is_some results then begin
        let rows = List.concat_map (fun r -> fst (Option.get r)) results in
        let cols = List.concat_map (fun r -> snd (Option.get r)) results in
        Some (rows, cols)
      end
      else None
    | BAnd (c1, c2) ->
      let g = !next_col in
      incr next_col;
      let r1 = go c1 in
      let r2 = go c2 in
      (match (r1, r2) with
       | Some (rows1, cols1), _ ->
         (* Keep the first qualified child; its head form already includes
            (head, -1@g) but with g excluded from T the -1 never fires. *)
         Some (rows1, cols1)
       | None, Some (rows2, cols2) ->
         (* Keep the second child: select its head by including g in T,
            which simultaneously cancels child 1's head (+1 - 1 = 0). *)
         Some (rows2, g :: cols2)
       | None, None -> None)
  in
  match go bin with
  | None -> None
  | Some (rows, cols) ->
    Some
      {
        kept_rows = List.sort Stdlib.compare rows;
        kept_cols = List.sort Stdlib.compare (0 :: cols);
      }

let check_purge_condition expr ~universe ~keep =
  not (Expr.eval expr (Attr.Set.diff universe keep))
