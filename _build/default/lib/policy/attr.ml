type t = string

let pseudo_role = "@empty"

let is_valid s =
  String.length s > 0
  && String.for_all
       (fun c -> not (List.mem c [ '&'; '|'; '('; ')'; ','; ' '; '\t'; '\n' ]))
       s

let compare = String.compare
let equal = String.equal

module Set = Set.Make (String)

let set_of_list = Set.of_list
