module B = Zkqac_bigint.Bigint

type t = { re : B.t; im : B.t }

let zero = { re = B.zero; im = B.zero }
let one = { re = B.one; im = B.zero }
let make re im = { re; im }
let of_fp re = { re; im = B.zero }
let equal a b = B.equal a.re b.re && B.equal a.im b.im
let is_zero a = B.is_zero a.re && B.is_zero a.im
let is_one a = B.is_one a.re && B.is_zero a.im
let add c a b = { re = Fp.add c a.re b.re; im = Fp.add c a.im b.im }
let sub c a b = { re = Fp.sub c a.re b.re; im = Fp.sub c a.im b.im }
let neg c a = { re = Fp.neg c a.re; im = Fp.neg c a.im }

(* (a + bi)(c + di) = (ac - bd) + (ad + bc)i, via Karatsuba: three base
   multiplications instead of four. *)
let mul c x y =
  let ac = Fp.mul c x.re y.re in
  let bd = Fp.mul c x.im y.im in
  let cross = Fp.mul c (Fp.add c x.re x.im) (Fp.add c y.re y.im) in
  { re = Fp.sub c ac bd; im = Fp.sub c (Fp.sub c cross ac) bd }

(* (a + bi)^2 = (a+b)(a-b) + 2ab i. *)
let sqr c x =
  let re = Fp.mul c (Fp.add c x.re x.im) (Fp.sub c x.re x.im) in
  let ab = Fp.mul c x.re x.im in
  { re; im = Fp.add c ab ab }

let conj c a = { a with im = Fp.neg c a.im }

(* 1 / (a + bi) = (a - bi) / (a^2 + b^2). *)
let inv c a =
  let norm = Fp.add c (Fp.sqr c a.re) (Fp.sqr c a.im) in
  let ninv = Fp.inv c norm in
  { re = Fp.mul c a.re ninv; im = Fp.neg c (Fp.mul c a.im ninv) }

let pow c a e =
  if B.sign e < 0 then invalid_arg "Fp2.pow: negative exponent";
  let nb = B.num_bits e in
  let r = ref one in
  for i = nb - 1 downto 0 do
    r := sqr c !r;
    if B.testbit e i then r := mul c !r a
  done;
  !r

let to_bytes c a =
  let w = (B.num_bits (Fp.modulus c) + 7) / 8 in
  B.to_bytes_be_pad w a.re ^ B.to_bytes_be_pad w a.im

let of_bytes c s =
  let w = (B.num_bits (Fp.modulus c) + 7) / 8 in
  if String.length s <> 2 * w then None
  else begin
    let re = B.of_bytes_be (String.sub s 0 w) in
    let im = B.of_bytes_be (String.sub s w w) in
    if B.compare re (Fp.modulus c) < 0 && B.compare im (Fp.modulus c) < 0 then
      Some { re; im }
    else None
  end
