(** Deterministic parameter generation for the type-A pairing. *)

type t = {
  r : Zkqac_bigint.Bigint.t;        (** prime group order *)
  p : Zkqac_bigint.Bigint.t;        (** field characteristic, ≡ 3 (mod 4) *)
  cofactor : Zkqac_bigint.Bigint.t; (** (p+1)/r *)
  fp : Fp.ctx;
  g : Curve.point;                  (** generator of the order-r subgroup *)
}

val generate : seed:int -> rbits:int -> pbits:int -> t

val tiny : t lazy_t
(** ~50-bit group over a ~96-bit field: fast enough for unit tests. *)

val small : t lazy_t
(** ~80-bit group over a ~160-bit field. *)

val default : t lazy_t
(** 160-bit group over a 512-bit field — PBC's standard "type a" sizing,
    matching the paper's experimental setup. *)
