module B = Zkqac_bigint.Bigint

type ctx = { p : B.t }

let create p =
  if B.compare p B.two < 0 then invalid_arg "Fp.create: modulus < 2";
  { p }

let modulus c = c.p
let zero = B.zero
let one = B.one
let of_bigint c x = B.erem x c.p
let of_int c x = B.erem (B.of_int x) c.p

let add c a b =
  let s = B.add a b in
  if B.compare s c.p >= 0 then B.sub s c.p else s

let sub c a b = if B.compare a b >= 0 then B.sub a b else B.add (B.sub a b) c.p
let neg c a = if B.is_zero a then B.zero else B.sub c.p a
let mul c a b = B.erem (B.mul a b) c.p
let sqr c a = mul c a a
let inv c a = B.invmod a c.p
let div c a b = mul c a (inv c b)
let pow c a e = B.powmod a e c.p
let sqrt c a = Zkqac_numth.Primes.sqrt_mod a c.p
let equal = B.equal
let is_zero = B.is_zero
