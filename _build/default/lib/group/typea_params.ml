(* Parameter generation for the type-A supersingular pairing.

   Mirrors PBC's "type a" parameter generation: pick a prime group order r,
   then search for a prime p = c*r - 1 with 4 | c, so that p = 3 (mod 4) and
   E : y^2 = x^3 + x over F_p is supersingular with #E = p + 1 = c*r.
   Generation is deterministic in the seed, so presets are stable across
   runs without shipping hard-coded constants. *)

module B = Zkqac_bigint.Bigint
module Primes = Zkqac_numth.Primes

type t = {
  r : B.t;           (* prime order of the pairing groups *)
  p : B.t;           (* field characteristic, p = 3 (mod 4) *)
  cofactor : B.t;    (* (p + 1) / r *)
  fp : Fp.ctx;
  g : Curve.point;   (* generator of the order-r subgroup *)
}

let generate ~seed ~rbits ~pbits =
  if pbits < rbits + 3 then invalid_arg "Typea_params.generate: pbits too small";
  let rng = Zkqac_rng.Prng.create seed in
  let r = Primes.random_prime rng ~bits:rbits in
  (* Search cofactors c = 4 * c0 with c0 random of the right size until
     p = c*r - 1 is prime. *)
  let c0_bits = pbits - rbits - 2 in
  let rec find_p () =
    let c0 =
      if c0_bits <= 1 then B.one
      else
        B.add (B.shift_left B.one (c0_bits - 1))
          (Zkqac_rng.Prng.bigint rng (B.shift_left B.one (c0_bits - 1)))
    in
    let c = B.shift_left c0 2 in
    let p = B.sub (B.mul c r) B.one in
    if Primes.is_probable_prime p then (p, c) else find_p ()
  in
  let p, cofactor = find_p () in
  assert (B.testbit p 0 && B.testbit p 1);
  let fp = Fp.create p in
  (* Generator: hash to a curve point, clear the cofactor. *)
  let rec find_g ctr =
    let pt = Curve.hash_to_point fp ~domain:"typea-gen" (string_of_int ctr) in
    let g = Curve.mul fp cofactor pt in
    if Curve.is_infinity g then find_g (ctr + 1) else g
  in
  let g = find_g 0 in
  assert (Curve.is_on_curve fp g);
  assert (Curve.is_infinity (Curve.mul fp r g));
  { r; p; cofactor; fp; g }

(* Presets, generated lazily; "tiny" keeps the real-pairing unit tests fast,
   "default" matches the 160-bit-group / 512-bit-field setting of PBC's
   standard a-type parameters (what the paper's numbers are based on). *)

let tiny = lazy (generate ~seed:0x7ea1 ~rbits:50 ~pbits:96)
let small = lazy (generate ~seed:0x7ea2 ~rbits:80 ~pbits:160)
let default = lazy (generate ~seed:0x7ea3 ~rbits:160 ~pbits:512)
