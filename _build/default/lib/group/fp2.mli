(** The quadratic extension F_p² = F_p[i] / (i² + 1).

    Valid whenever p ≡ 3 (mod 4), which the type-A curve parameters
    guarantee; then −1 is a quadratic non-residue so i² = −1 is irreducible.
    Elements are pairs (re, im) of canonical F_p residues. *)

type t = { re : Zkqac_bigint.Bigint.t; im : Zkqac_bigint.Bigint.t }

val zero : t
val one : t
val make : Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> t
val of_fp : Zkqac_bigint.Bigint.t -> t
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val add : Fp.ctx -> t -> t -> t
val sub : Fp.ctx -> t -> t -> t
val neg : Fp.ctx -> t -> t
val mul : Fp.ctx -> t -> t -> t
val sqr : Fp.ctx -> t -> t
val inv : Fp.ctx -> t -> t
(** @raise Division_by_zero on 0. *)

val conj : Fp.ctx -> t -> t
(** Conjugation (a + bi ↦ a − bi); this is the p-power Frobenius. *)

val pow : Fp.ctx -> t -> Zkqac_bigint.Bigint.t -> t
val to_bytes : Fp.ctx -> t -> string
(** Fixed-width big-endian [re || im]. *)

val of_bytes : Fp.ctx -> string -> t option
