(** The prime field F_p, as a context of operations over canonical residues.

    Elements are {!Zkqac_bigint.Bigint.t} values in [[0, p)]; all operations
    assume (and preserve) canonical form. *)

type ctx

val create : Zkqac_bigint.Bigint.t -> ctx
(** @raise Invalid_argument if the modulus is < 2. *)

val modulus : ctx -> Zkqac_bigint.Bigint.t
val zero : Zkqac_bigint.Bigint.t
val one : Zkqac_bigint.Bigint.t
val of_bigint : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val of_int : ctx -> int -> Zkqac_bigint.Bigint.t
val add : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val sub : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val neg : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val mul : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val sqr : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val inv : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
(** @raise Division_by_zero on 0. *)

val div : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val pow : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
val sqrt : ctx -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t option
val equal : Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> bool
val is_zero : Zkqac_bigint.Bigint.t -> bool
