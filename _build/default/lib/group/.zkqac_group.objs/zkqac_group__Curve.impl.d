lib/group/curve.ml: Array Fp String Zkqac_bigint Zkqac_hashing
