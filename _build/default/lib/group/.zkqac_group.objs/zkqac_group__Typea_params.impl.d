lib/group/typea_params.ml: Curve Fp Zkqac_bigint Zkqac_numth Zkqac_rng
