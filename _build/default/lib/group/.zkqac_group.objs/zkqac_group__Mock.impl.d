lib/group/mock.ml: Pairing_intf Printf String Zkqac_bigint Zkqac_hashing
