lib/group/backend.ml: Lazy Mock Typea Typea_params
