lib/group/fp.mli: Zkqac_bigint
