lib/group/typea.ml: Curve Fp Fp2 Pairing_intf Printf Typea_params Zkqac_bigint Zkqac_hashing
