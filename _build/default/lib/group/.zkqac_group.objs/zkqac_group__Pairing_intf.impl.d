lib/group/pairing_intf.ml: Zkqac_bigint Zkqac_hashing
