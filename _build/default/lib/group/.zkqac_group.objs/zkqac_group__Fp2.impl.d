lib/group/fp2.ml: Fp String Zkqac_bigint
