lib/group/fp2.mli: Fp Zkqac_bigint
