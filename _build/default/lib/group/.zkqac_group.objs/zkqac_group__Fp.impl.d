lib/group/fp.ml: Zkqac_bigint Zkqac_numth
