lib/group/curve.mli: Fp Zkqac_bigint
