lib/group/typea_params.mli: Curve Fp Zkqac_bigint
