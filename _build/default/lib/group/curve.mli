(** The supersingular curve E : y² = x³ + x over F_p (p ≡ 3 mod 4).

    With p ≡ 3 (mod 4), E is supersingular with #E(F_p) = p + 1 and embedding
    degree 2 — the same curve family as the PBC library's "type a" pairing
    parameters used by the paper's implementation. *)

type point = Infinity | Affine of Zkqac_bigint.Bigint.t * Zkqac_bigint.Bigint.t

val equal : point -> point -> bool
val is_infinity : point -> bool
val neg : Fp.ctx -> point -> point
val is_on_curve : Fp.ctx -> point -> bool
val add : Fp.ctx -> point -> point -> point
val double : Fp.ctx -> point -> point

val mul : Fp.ctx -> Zkqac_bigint.Bigint.t -> point -> point
(** Scalar multiplication (double-and-add); scalar must be >= 0. *)

val hash_to_point : Fp.ctx -> domain:string -> string -> point
(** Try-and-increment: hash to an x-coordinate, bump until x³+x is square.
    The result is on the full curve; callers multiply by the cofactor to land
    in the prime-order subgroup. *)

val to_bytes : Fp.ctx -> point -> string
(** Compressed encoding: one tag byte (0 = infinity, 2/3 = sign of y) plus
    the x-coordinate, fixed width. *)

val of_bytes : Fp.ctx -> string -> point option
val encoded_size : Fp.ctx -> int
