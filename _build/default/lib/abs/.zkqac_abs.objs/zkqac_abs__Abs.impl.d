lib/abs/abs.ml: Array Buffer Char List Map String Zkqac_bigint Zkqac_group Zkqac_hashing Zkqac_policy
