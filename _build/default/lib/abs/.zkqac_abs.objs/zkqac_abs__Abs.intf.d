lib/abs/abs.mli: Zkqac_group Zkqac_hashing Zkqac_policy
