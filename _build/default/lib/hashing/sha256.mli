(** SHA-256 (FIPS 180-4), implemented from the specification.

    This is the collision-resistant hash [hash(.)] of the paper: it binds
    record contents into APP signatures, derives the [hash(tau, m)] scalar of
    the ABS scheme, and feeds the hash-to-field / hash-to-group maps. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** 32-byte raw digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val hex : string -> string
(** One-shot digest rendered as 64 lowercase hex characters. *)

val digest_list : string list -> string
(** Digest of the length-prefixed concatenation of the parts: unlike a bare
    concatenation this is unambiguous, so ["ab"]+["c"] and ["a"]+["bc"] hash
    differently. *)
