(* HMAC_DRBG (NIST SP 800-90A, SHA-256 instantiation, no reseeding).

   This is the source of the "random values" the paper's cryptographic
   algorithms draw (ABS nonces, CP-ABE secrets, re-randomizers). Being
   deterministic in the seed makes every protocol run replayable. *)

module B = Zkqac_bigint.Bigint

type t = { mutable key : string; mutable v : string }

let create ~seed =
  let t = { key = String.make 32 '\000'; v = String.make 32 '\x01' } in
  let update provided =
    t.key <- Hmac.mac ~key:t.key (t.v ^ "\x00" ^ provided);
    t.v <- Hmac.mac ~key:t.key t.v;
    if provided <> "" then begin
      t.key <- Hmac.mac ~key:t.key (t.v ^ "\x01" ^ provided);
      t.v <- Hmac.mac ~key:t.key t.v
    end
  in
  update seed;
  t

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.mac ~key:t.key t.v;
    Buffer.add_string buf t.v
  done;
  t.key <- Hmac.mac ~key:t.key (t.v ^ "\x00");
  t.v <- Hmac.mac ~key:t.key t.v;
  String.sub (Buffer.contents buf) 0 n

let bigint t bound =
  if B.compare bound B.zero <= 0 then invalid_arg "Drbg.bigint";
  let nb = B.num_bits bound in
  let nbytes = (nb + 7) / 8 in
  let topbits = nb - ((nbytes - 1) * 8) in
  let rec draw () =
    let s = Bytes.of_string (generate t nbytes) in
    let m = (1 lsl topbits) - 1 in
    Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) land m));
    let v = B.of_bytes_be (Bytes.to_string s) in
    if B.compare v bound < 0 then v else draw ()
  in
  draw ()

let nonzero_bigint t bound =
  let rec draw () =
    let v = bigint t bound in
    if B.is_zero v then draw () else v
  in
  draw ()
