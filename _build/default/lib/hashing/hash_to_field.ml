(* Hashing arbitrary strings into Z_p, with domain separation.

   We expand with counter-mode SHA-256 to 128 bits more than |p| and reduce,
   which keeps the output distribution within 2^-128 of uniform -- the
   standard hash_to_field recipe. *)

module B = Zkqac_bigint.Bigint

let expand ~domain msg nbytes =
  let buf = Buffer.create nbytes in
  let ctr = ref 0 in
  while Buffer.length buf < nbytes do
    Buffer.add_string buf
      (Sha256.digest_list [ domain; msg; string_of_int !ctr ]);
    incr ctr
  done;
  String.sub (Buffer.contents buf) 0 nbytes

let to_zp ~domain ~p msg =
  let nbytes = ((B.num_bits p + 7) / 8) + 16 in
  B.erem (B.of_bytes_be (expand ~domain msg nbytes)) p

let to_zp_list ~domain ~p parts =
  let joined =
    String.concat ""
      (List.map (fun s -> Printf.sprintf "%08d:%s" (String.length s) s) parts)
  in
  to_zp ~domain ~p joined
