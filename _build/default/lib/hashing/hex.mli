(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
val decode : string -> string
(** @raise Invalid_argument on malformed input. *)
