let encode s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Hex.decode: bad digit"
  in
  String.init (n / 2) (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))
