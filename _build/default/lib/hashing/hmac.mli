(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** 32-byte raw tag. *)
