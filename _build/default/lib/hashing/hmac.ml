(* HMAC-SHA256 (RFC 2104). Used by the DRBG and by keyed derivation of
   pseudo-record contents. *)

let block_size = 64

let mac ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let xor_pad byte =
    String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))
  in
  let inner = Sha256.digest (xor_pad 0x36 ^ msg) in
  Sha256.digest (xor_pad 0x5c ^ inner)
