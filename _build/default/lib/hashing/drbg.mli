(** HMAC_DRBG (SP 800-90A) over SHA-256: deterministic cryptographic-quality
    byte stream, used for all protocol-level randomness so runs replay. *)

type t

val create : seed:string -> t
val generate : t -> int -> string
(** Next [n] bytes of output. *)

val bigint : t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
(** Uniform in [0, bound) by rejection sampling. *)

val nonzero_bigint : t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
(** Uniform in [1, bound). *)
