(** Hashing byte strings into Z_p with domain separation. *)

val expand : domain:string -> string -> int -> string
(** [expand ~domain msg n] is an [n]-byte pseudo-random expansion of [msg]. *)

val to_zp :
  domain:string -> p:Zkqac_bigint.Bigint.t -> string -> Zkqac_bigint.Bigint.t
(** Statistically-uniform element of [[0, p)]. *)

val to_zp_list :
  domain:string ->
  p:Zkqac_bigint.Bigint.t ->
  string list ->
  Zkqac_bigint.Bigint.t
(** Like {!to_zp} on an unambiguous (length-prefixed) encoding of the parts. *)
