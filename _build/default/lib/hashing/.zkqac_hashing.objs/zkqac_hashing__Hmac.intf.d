lib/hashing/hmac.mli:
