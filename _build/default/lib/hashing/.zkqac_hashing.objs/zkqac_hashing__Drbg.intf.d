lib/hashing/drbg.mli: Zkqac_bigint
