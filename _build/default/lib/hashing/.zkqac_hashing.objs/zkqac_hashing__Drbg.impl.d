lib/hashing/drbg.ml: Buffer Bytes Char Hmac String Zkqac_bigint
