lib/hashing/hmac.ml: Char Sha256 String
