lib/hashing/sha256.ml: Array Buffer Bytes Char List Printf String
