lib/hashing/sha256.mli:
