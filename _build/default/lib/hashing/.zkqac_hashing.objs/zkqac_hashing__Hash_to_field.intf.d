lib/hashing/hash_to_field.mli: Zkqac_bigint
