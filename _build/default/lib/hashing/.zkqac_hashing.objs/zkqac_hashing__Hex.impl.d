lib/hashing/hex.ml: Buffer Char Printf String
