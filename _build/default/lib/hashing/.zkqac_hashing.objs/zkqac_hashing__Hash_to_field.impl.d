lib/hashing/hash_to_field.ml: Buffer List Printf Sha256 String Zkqac_bigint
