lib/hashing/hex.mli:
