(** Parallel map over OCaml 5 domains — the Section 8.2 optimization.

    The paper parallelizes the independent ABS.Relax jobs of a query across
    OpenMP threads; this module provides the same fan-out with domains. Jobs
    are deterministic-output thunks; the result order matches the input
    order. *)

val available_cores : unit -> int

val map : threads:int -> (unit -> 'a) list -> 'a list
(** Run the thunks on [threads] domains (static block partitioning, like an
    OpenMP static schedule). [threads <= 1] runs inline. Exceptions raised by
    a job are re-raised in the caller. *)

val time : (unit -> 'a) -> 'a * float
(** Wall-clock timing helper for benches. *)
