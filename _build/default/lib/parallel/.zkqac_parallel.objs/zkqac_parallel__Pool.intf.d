lib/parallel/pool.mli:
