lib/parallel/pool.ml: Array Atomic Domain List Unix
