let available_cores () = Domain.recommended_domain_count ()

exception Job_failed of exn

let map ~threads jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if threads <= 1 || n <= 1 then Array.to_list (Array.map (fun j -> j ()) jobs)
  else begin
    let threads = min threads n in
    let results = Array.make n None in
    let failure = Atomic.make None in
    (* Static block partition: domain k takes the contiguous slice
       [k*n/threads, (k+1)*n/threads). *)
    let worker k () =
      let lo = k * n / threads and hi = (k + 1) * n / threads in
      try
        for i = lo to hi - 1 do
          results.(i) <- Some (jobs.(i) ())
        done
      with e -> Atomic.set failure (Some e)
    in
    let domains = List.init threads (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join domains;
    (match Atomic.get failure with
     | Some e -> raise (Job_failed e)
     | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> raise (Job_failed Not_found))
         results)
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)
