lib/util/wire.ml: Array Buffer Char List String
