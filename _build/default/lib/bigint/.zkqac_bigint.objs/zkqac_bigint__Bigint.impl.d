lib/bigint/bigint.ml: Array Buffer Bytes Char Format List Printf Stdlib String
