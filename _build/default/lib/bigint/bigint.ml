(* Sign-magnitude arbitrary-precision integers over base-2^26 limbs.

   The limb width 26 is chosen so that a product of two limbs (<= 2^52) plus
   carries stays comfortably within OCaml's 63-bit native ints, which keeps
   every inner loop in plain [int] arithmetic with no boxing. Magnitudes are
   little-endian [int array]s with no trailing zero limbs; the canonical zero
   is [{ sign = 0; mag = [||] }]. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* Strip trailing zero limbs and canonicalize the sign of zero. *)
let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let k = top n in
  if k = 0 then zero
  else if k = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 k }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i < 0 then -1 else 1 in
    (* min_int negation overflows; go through two limbs manually. *)
    let lo = i land mask in
    let rest = if i < 0 then -(i asr limb_bits) else i asr limb_bits in
    let lo = if i < 0 && lo <> 0 then base - lo else lo in
    let rest = if i < 0 && lo <> 0 then rest - 1 else rest in
    (* Above is fiddly; use the straightforward route for the common case. *)
    if i <> min_int then begin
      let v = Stdlib.abs i in
      let rec limbs v acc = if v = 0 then acc else limbs (v lsr limb_bits) ((v land mask) :: acc) in
      let l = List.rev (limbs v []) in
      normalize sign (Array.of_list l)
    end
    else begin
      ignore lo; ignore rest;
      let v = { sign = 1; mag = [| 0; 0; 1 lsl (62 - 2 * limb_bits) |] } in
      { v with sign = -1 }
    end
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + bits top 0
  end

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let is_one t = equal t one

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(lmax) <- !carry;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.mag.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.mag.(j)) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr limb_bits;
          incr k
        done
      end
    done;
    normalize (a.sign * b.sign) r
  end

let mul_int a i = mul a (of_int i)
let add_int a i = add a (of_int i)

let shift_left t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t.mag in
    let r = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = t.mag.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize t.sign r
  end

let shift_right t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t.mag in
    if limbs >= n then zero
    else begin
      let m = n - limbs in
      let r = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = t.mag.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < n && bits > 0 then (t.mag.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      normalize t.sign r
    end
  end

let testbit t k =
  let limb = k / limb_bits and bit = k mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr bit) land 1 = 1

(* Division of a magnitude by a single limb; returns (quotient, remainder). *)
let divmod_mag_limb u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor u.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth Algorithm D on magnitudes; requires |u| >= |v| and length v >= 2.
   Returns (quotient, remainder) magnitudes. *)
let divmod_mag u v =
  let n = Array.length v in
  let m = Array.length u - n in
  (* Normalize so the top limb of v has its high bit set. *)
  let rec lead_shift x s = if x land (1 lsl (limb_bits - 1)) <> 0 then s else lead_shift (x lsl 1) (s + 1) in
  let s = lead_shift v.(n - 1) 0 in
  let vn = Array.make n 0 in
  for i = n - 1 downto 1 do
    vn.(i) <- ((v.(i) lsl s) lor (if s = 0 then 0 else v.(i - 1) lsr (limb_bits - s))) land mask
  done;
  vn.(0) <- (v.(0) lsl s) land mask;
  let un = Array.make (m + n + 1) 0 in
  un.(m + n) <- if s = 0 then 0 else u.(m + n - 1) lsr (limb_bits - s);
  for i = m + n - 1 downto 1 do
    un.(i) <- ((u.(i) lsl s) lor (if s = 0 then 0 else u.(i - 1) lsr (limb_bits - s))) land mask
  done;
  un.(0) <- (u.(0) lsl s) land mask;
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let continue_correct = ref true in
    while !continue_correct do
      if !qhat >= base || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then continue_correct := false
      end
      else continue_correct := false
    done;
    (* Multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) + !carry in
      carry := p lsr limb_bits;
      let t = un.(i + j) - (p land mask) - !borrow in
      if t < 0 then begin un.(i + j) <- t + base; borrow := 1 end
      else begin un.(i + j) <- t; borrow := 0 end
    done;
    let t = un.(j + n) - !carry - !borrow in
    if t < 0 then begin
      (* qhat was one too large: add v back. *)
      un.(j + n) <- t + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s2 = un.(i + j) + vn.(i) + !c in
        un.(i + j) <- s2 land mask;
        c := s2 lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land mask
    end
    else un.(j + n) <- t;
    q.(j) <- !qhat
  done;
  (* Denormalize remainder. *)
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    r.(i) <- ((un.(i) lsr s) lor (if s = 0 || i + 1 > n then 0 else (un.(i + 1) lsl (limb_bits - s)) land mask)) land mask
  done;
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let c = cmp_mag a.mag b.mag in
  let qmag, rmag =
    if c < 0 then ([||], a.mag)
    else if Array.length b.mag = 1 then begin
      let q, r = divmod_mag_limb a.mag b.mag.(0) in
      (q, if r = 0 then [||] else [| r |])
    end
    else divmod_mag a.mag b.mag
  in
  let q = normalize (a.sign * b.sign) qmag in
  let r = normalize a.sign rmag in
  (* Adjust to Euclidean convention: remainder in [0, |b|). *)
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)
let erem = rem

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let powmod b e m =
  if sign e < 0 then invalid_arg "Bigint.powmod: negative exponent";
  if compare m zero <= 0 then invalid_arg "Bigint.powmod: non-positive modulus";
  let b = erem b m in
  let nb = num_bits e in
  let r = ref (erem one m) in
  for i = nb - 1 downto 0 do
    r := rem (mul !r !r) m;
    if testbit e i then r := rem (mul !r b) m
  done;
  !r

(* Extended Euclid on the magnitudes; returns x with a*x = gcd (mod m). *)
let invmod a m =
  let m = abs m in
  if is_zero m then raise Division_by_zero;
  let a = erem a m in
  let rec go r0 r1 s0 s1 =
    if is_zero r1 then (r0, s0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 r2 s1 (sub s0 (mul q s1))
    end
  in
  let g, x = go m a zero one in
  ignore g;
  let g2 = gcd a m in
  if not (is_one g2) && not (is_zero a && is_one m) then raise Division_by_zero
  else erem x m

let to_int_opt t =
  if t.sign = 0 then Some 0
  else begin
    let nb = num_bits t in
    if nb <= 62 then begin
      let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) t.mag 0 in
      Some (if t.sign < 0 then -v else v)
    end
    else if nb = 63 && t.sign < 0 && equal t (of_int min_int) then Some min_int
    else None
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let ten = of_int 10

let to_string t =
  if t.sign = 0 then "0"
  else begin
    (* Divide by 10^k chunks for speed: use single-limb 10^7 divisor. *)
    let chunk = 10_000_000 in
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = divmod_mag_limb mag chunk in
        let q = (normalize 1 q).mag in
        go q (r :: acc)
      end
    in
    let parts = go t.mag [] in
    (match parts with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       if t.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%07d" p)) rest);
    Buffer.contents buf
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let neg_flag = s.[0] = '-' in
  let s = if neg_flag || s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let v =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
      let acc = ref zero in
      String.iter
        (fun c ->
          let d =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
            | '_' -> -1
            | _ -> invalid_arg "Bigint.of_string: bad hex digit"
          in
          if d >= 0 then acc := add (shift_left !acc 4) (of_int d))
        (String.sub s 2 (String.length s - 2));
      !acc
    end
    else begin
      let acc = ref zero in
      String.iter
        (fun c ->
          match c with
          | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
          | '_' -> ()
          | _ -> invalid_arg "Bigint.of_string: bad digit")
        s;
      !acc
    end
  in
  if neg_flag then neg v else v

let to_hex t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    let nb = num_bits t in
    let nibbles = (nb + 3) / 4 in
    let started = ref false in
    for i = nibbles - 1 downto 0 do
      let v =
        (if testbit t ((i * 4) + 3) then 8 else 0)
        lor (if testbit t ((i * 4) + 2) then 4 else 0)
        lor (if testbit t ((i * 4) + 1) then 2 else 0)
        lor (if testbit t (i * 4) then 1 else 0)
      in
      if v <> 0 || !started || i = 0 then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[v]
      end
    done;
    Buffer.contents buf
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be t =
  let t = abs t in
  if is_zero t then ""
  else begin
    let nb = (num_bits t + 7) / 8 in
    let b = Bytes.create nb in
    let v = ref t in
    for i = nb - 1 downto 0 do
      let limb = if Array.length !v.mag = 0 then 0 else !v.mag.(0) in
      Bytes.set b i (Char.chr (limb land 0xff));
      v := shift_right !v 8
    done;
    Bytes.to_string b
  end

let to_bytes_be_pad len t =
  let s = to_bytes_be t in
  let n = String.length s in
  if n > len then invalid_arg "Bigint.to_bytes_be_pad: too large"
  else String.make (len - n) '\000' ^ s

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

let pp fmt t = Format.pp_print_string fmt (to_string t)
