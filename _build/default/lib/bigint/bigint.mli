(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-[2^26] limbs. This module is the
    arithmetic substrate for the finite fields, elliptic curves and pairings
    used by the rest of the library; it intentionally exposes only the
    operations those layers need, all of which are total unless documented
    otherwise. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t
val to_int : t -> int
(** @raise Failure if the value does not fit in an OCaml [int]. *)

val to_int_opt : t -> int option

val of_string : string -> t
(** Decimal, with optional leading [-]; also accepts a [0x] prefix for
    hexadecimal. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering. *)

val to_hex : t -> string
(** Lowercase hexadecimal of the magnitude, with a [-] prefix if negative. *)

val of_bytes_be : string -> t
(** Big-endian unsigned magnitude. The empty string is [zero]. *)

val to_bytes_be : t -> string
(** Minimal-length big-endian magnitude of [abs t]; [zero] is [""]. *)

val to_bytes_be_pad : int -> t -> string
(** Like {!to_bytes_be} but left-padded with zero bytes to exactly the given
    length. @raise Invalid_argument if the magnitude does not fit. *)

(** {1 Predicates and comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val add_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < |b|] (Euclidean
    remainder: [r] is always non-negative). @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder, always in [0, |b|). Alias of [snd (divmod a b)]. *)

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val testbit : t -> int -> bool
val num_bits : t -> int
(** Number of significant bits of the magnitude; [num_bits zero = 0]. *)

(** {1 Modular arithmetic} *)

val powmod : t -> t -> t -> t
(** [powmod b e m] is [b^e mod m] for [e >= 0], result in [0, m).
    @raise Invalid_argument if [e < 0] or [m <= 0]. *)

val invmod : t -> t -> t
(** Modular inverse in [0, m). @raise Division_by_zero if not invertible. *)

val gcd : t -> t -> t

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

val pp : Format.formatter -> t -> unit
