module B = Zkqac_bigint.Bigint

type matrix = B.t array array

let of_int_matrix ~p m =
  Array.map (Array.map (fun x -> B.erem (B.of_int x) p)) m

let mul_vec_mat ~p v m ~cols =
  let out = Array.make cols B.zero in
  Array.iteri
    (fun i vi ->
      if not (B.is_zero vi) then
        Array.iteri
          (fun j mij -> out.(j) <- B.erem (B.add out.(j) (B.mul vi mij)) p)
          (Array.sub m.(i) 0 cols))
    v;
  out

(* Find v with v*M = target by Gaussian elimination on M^T | target^T:
   solving M^T x = target^T for x gives the row combination. *)
let solve_left ~p m target =
  let l = Array.length m in
  let t = Array.length target in
  if l = 0 then (if Array.for_all B.is_zero target then Some [||] else None)
  else begin
    (* Build augmented t x (l+1) system: rows are columns of m. *)
    let a = Array.init t (fun j -> Array.init (l + 1) (fun i -> if i < l then m.(i).(j) else target.(j))) in
    let inv x = B.invmod x p in
    let nrows = t and ncols = l in
    let pivot_col_of_row = Array.make nrows (-1) in
    let row = ref 0 in
    for col = 0 to ncols - 1 do
      if !row < nrows then begin
        (* Find pivot. *)
        let piv = ref (-1) in
        for r = !row to nrows - 1 do
          if !piv = -1 && not (B.is_zero a.(r).(col)) then piv := r
        done;
        if !piv >= 0 then begin
          let tmp = a.(!row) in
          a.(!row) <- a.(!piv);
          a.(!piv) <- tmp;
          let d = inv a.(!row).(col) in
          for j = 0 to ncols do
            a.(!row).(j) <- B.erem (B.mul a.(!row).(j) d) p
          done;
          for r = 0 to nrows - 1 do
            if r <> !row && not (B.is_zero a.(r).(col)) then begin
              let f = a.(r).(col) in
              for j = 0 to ncols do
                a.(r).(j) <- B.erem (B.sub a.(r).(j) (B.mul f a.(!row).(j))) p
              done
            end
          done;
          pivot_col_of_row.(!row) <- col;
          incr row
        end
      end
    done;
    (* Consistency: rows with all-zero coefficients must have zero rhs. *)
    let consistent = ref true in
    for r = 0 to nrows - 1 do
      let allz = ref true in
      for j = 0 to ncols - 1 do
        if not (B.is_zero a.(r).(j)) then allz := false
      done;
      if !allz && not (B.is_zero a.(r).(ncols)) then consistent := false
    done;
    if not !consistent then None
    else begin
      let x = Array.make l B.zero in
      for r = 0 to nrows - 1 do
        if pivot_col_of_row.(r) >= 0 then x.(pivot_col_of_row.(r)) <- a.(r).(ncols)
      done;
      (* Double-check (cheap insurance against elimination bugs). *)
      let check = mul_vec_mat ~p x m ~cols:t in
      if Array.for_all2 B.equal check target then Some x else None
    end
  end

let spans_e1 ~p m ~cols =
  let target = Array.init cols (fun j -> if j = 0 then B.one else B.zero) in
  match solve_left ~p m target with Some _ -> true | None -> false
