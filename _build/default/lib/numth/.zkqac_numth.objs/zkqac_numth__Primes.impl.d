lib/numth/primes.ml: Zkqac_bigint Zkqac_hashing Zkqac_rng
