lib/numth/primes.mli: Zkqac_bigint Zkqac_rng
