lib/numth/zp_linalg.ml: Array Zkqac_bigint
