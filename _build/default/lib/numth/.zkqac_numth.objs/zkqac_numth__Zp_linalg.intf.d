lib/numth/zp_linalg.mli: Zkqac_bigint
