module B = Zkqac_bigint.Bigint
module Prng = Zkqac_rng.Prng

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229 ]

(* Miller-Rabin witness loop with a deterministic DRBG for the bases, so
   primality results are reproducible. *)
let miller_rabin rounds n =
  let n1 = B.sub n B.one in
  let rec split d s = if B.is_even d then split (B.shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n1 0 in
  let drbg = Zkqac_hashing.Drbg.create ~seed:("mr:" ^ B.to_string n) in
  let witness a =
    let x = ref (B.powmod a d n) in
    if B.is_one !x || B.equal !x n1 then false
    else begin
      let composite = ref true in
      (try
         for _ = 1 to s - 1 do
           x := B.rem (B.mul !x !x) n;
           if B.equal !x n1 then begin
             composite := false;
             raise Exit
           end
         done
       with Exit -> ());
      !composite
    end
  in
  let rec loop i =
    if i = rounds then true
    else begin
      let a = B.add (Zkqac_hashing.Drbg.bigint drbg (B.sub n (B.of_int 3))) B.two in
      if witness a then false else loop (i + 1)
    end
  in
  if B.compare n B.two < 0 then false else loop 0

let is_probable_prime ?(rounds = 32) n =
  if B.compare n B.two < 0 then false
  else begin
    let rec trial = function
      | [] -> miller_rabin rounds n
      | p :: rest ->
        let bp = B.of_int p in
        if B.equal n bp then true
        else if B.is_zero (B.rem n bp) then false
        else trial rest
    in
    trial small_primes
  end

let random_prime rng ~bits =
  if bits < 2 then invalid_arg "Primes.random_prime";
  let top = B.shift_left B.one (bits - 1) in
  let rec go () =
    (* Uniform in [0, 2^(bits-1)), then force the top bit (exact bit length)
       and the low bit (odd). *)
    let v = Prng.bigint rng top in
    let v = B.add top v in
    let v = if B.is_even v then B.add v B.one else v in
    if is_probable_prime v then v else go ()
  in
  go ()

let next_prime n =
  let n = if B.compare n B.two <= 0 then B.two else n in
  let start = if B.is_even n then B.add n B.one else n in
  let rec go v = if is_probable_prime v then v else go (B.add v B.two) in
  if B.equal n B.two then B.two else go start

let legendre a p =
  let a = B.erem a p in
  if B.is_zero a then 0
  else begin
    let e = B.shift_right (B.sub p B.one) 1 in
    let r = B.powmod a e p in
    if B.is_one r then 1 else -1
  end

let sqrt_mod a p =
  let a = B.erem a p in
  if B.is_zero a then Some B.zero
  else if legendre a p <> 1 then None
  else if B.testbit p 0 && B.testbit p 1 then begin
    (* p = 3 (mod 4): sqrt = a^((p+1)/4). *)
    let e = B.shift_right (B.add p B.one) 2 in
    let r = B.powmod a e p in
    if B.equal (B.rem (B.mul r r) p) a then Some r else None
  end
  else begin
    (* Tonelli-Shanks for p = 1 (mod 4). *)
    let p1 = B.sub p B.one in
    let rec split q s = if B.is_even q then split (B.shift_right q 1) (s + 1) else (q, s) in
    let q, s = split p1 0 in
    (* Find a quadratic non-residue. *)
    let rec find_z z = if legendre z p = -1 then z else find_z (B.add z B.one) in
    let z = find_z B.two in
    let m = ref s in
    let c = ref (B.powmod z q p) in
    let t = ref (B.powmod a q p) in
    let r = ref (B.powmod a (B.shift_right (B.add q B.one) 1) p) in
    let result = ref None in
    (try
       while true do
         if B.is_one !t then begin
           result := Some !r;
           raise Exit
         end;
         (* Least i with t^(2^i) = 1. *)
         let rec least_i tt i =
           if B.is_one tt then i else least_i (B.rem (B.mul tt tt) p) (i + 1)
         in
         let i = least_i !t 0 in
         if i = !m then raise Exit (* no root; should not happen after legendre *)
         else begin
           let b = ref !c in
           for _ = 1 to !m - i - 1 do
             b := B.rem (B.mul !b !b) p
           done;
           m := i;
           c := B.rem (B.mul !b !b) p;
           t := B.rem (B.mul !t !c) p;
           r := B.rem (B.mul !r !b) p
         end
       done
     with Exit -> ());
    !result
  end
