(** Primality testing and prime generation (for pairing parameter setup). *)

val is_probable_prime : ?rounds:int -> Zkqac_bigint.Bigint.t -> bool
(** Deterministic trial division by small primes followed by Miller–Rabin
    with [rounds] (default 32) pseudo-random bases. *)

val random_prime : Zkqac_rng.Prng.t -> bits:int -> Zkqac_bigint.Bigint.t
(** Random prime with exactly [bits] significant bits. *)

val next_prime : Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t
(** Smallest probable prime >= the argument. *)

val sqrt_mod :
  Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t option
(** [sqrt_mod a p] is a square root of [a] modulo an odd prime [p], if one
    exists. Uses the p ≡ 3 (mod 4) shortcut when applicable, Tonelli–Shanks
    otherwise. *)

val legendre : Zkqac_bigint.Bigint.t -> Zkqac_bigint.Bigint.t -> int
(** Legendre symbol (a|p) in {-1, 0, 1} for odd prime p. *)
