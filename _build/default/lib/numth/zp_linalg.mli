(** Dense linear algebra over the prime field Z_p.

    Used as the executable oracle for monotone span programs
    (Definition 5.3 of the paper): a policy accepts an attribute set iff the
    MSP rows labelled by held attributes span [e1 = (1,0,...,0)]. *)

type matrix = Zkqac_bigint.Bigint.t array array
(** Row-major; all entries must be canonical residues mod p. *)

val of_int_matrix : p:Zkqac_bigint.Bigint.t -> int array array -> matrix

val solve_left :
  p:Zkqac_bigint.Bigint.t ->
  matrix ->
  Zkqac_bigint.Bigint.t array ->
  Zkqac_bigint.Bigint.t array option
(** [solve_left ~p m target] finds [v] with [v * m = target] (a row vector
    combination of the rows of [m]), or [None] if the target is not in the
    row span. [m] is [l x t], [target] has length [t], [v] has length [l]. *)

val spans_e1 : p:Zkqac_bigint.Bigint.t -> matrix -> cols:int -> bool
(** Whether the rows span the target vector [(1, 0, ..., 0)] of width
    [cols]. An empty row set spans nothing. *)

val mul_vec_mat :
  p:Zkqac_bigint.Bigint.t ->
  Zkqac_bigint.Bigint.t array ->
  matrix ->
  cols:int ->
  Zkqac_bigint.Bigint.t array
(** Row-vector times matrix. *)
