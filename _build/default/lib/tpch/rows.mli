(** TPC-H-like row synthesis (a "dbgen-lite").

    The paper evaluates on the TPC-H Lineitem and Orders tables; this module
    generates rows with the same attributes and value distributions
    (shipdate over the 1992–1998 window, discount 0–0.10, quantity 1–50,
    clustered orderkeys), scaled down to whatever cardinality an experiment
    asks for. *)

type lineitem = {
  l_orderkey : int;
  l_partkey : int;
  l_quantity : int;        (** 1..50 *)
  l_extendedprice : float;
  l_discount : int;        (** percent points, 0..10 *)
  l_tax : int;             (** percent points, 0..8 *)
  l_shipdate : int;        (** days since 1992-01-01, 0..2525 *)
  l_returnflag : char;
  l_linestatus : char;
  l_shipmode : string;
  l_comment : string;
}

type order = {
  o_orderkey : int;
  o_custkey : int;
  o_totalprice : float;
  o_orderdate : int;
  o_orderpriority : string;
  o_comment : string;
}

val shipdate_days : int
(** Size of the shipdate domain. *)

val lineitems : Zkqac_rng.Prng.t -> n:int -> max_orderkey:int -> lineitem list
val orders : Zkqac_rng.Prng.t -> n:int -> max_orderkey:int -> order list

val lineitem_payload : lineitem -> string
(** The pipe-separated row, used as record content. *)

val order_payload : order -> string
