(** Experiment workloads: discretized TPC-H records, random access policies,
    Q6-style range queries, Q12-style join inputs, and role sets hitting a
    target accessibility fraction — the knobs of Section 10. *)

module Expr := Zkqac_policy.Expr

type policy_config = {
  num_policies : int;  (** distinct policies (default 10 in the paper) *)
  num_roles : int;     (** role universe size (default 10) *)
  or_fanin : int;      (** root OR gate inputs (default 3) *)
  and_fanin : int;     (** roles per AND clause (default 2) *)
}

val default_policies : policy_config

val gen_policies :
  Zkqac_rng.Prng.t -> policy_config -> Zkqac_policy.Attr.t list * Expr.t array
(** The role names and the policy pool. *)

val lineitem_records :
  Zkqac_rng.Prng.t ->
  space:Zkqac_core.Keyspace.t ->
  rows:int ->
  policies:Expr.t array ->
  Zkqac_core.Record.t list
(** Generate [rows] Lineitem rows, discretize (shipdate, discount, quantity)
    into the keyspace, and merge rows sharing a discretized key into one
    record (the Appendix E super-record merge), so keys are distinct. Records
    under the same key share one policy, as in the paper's assignment. *)

val orderkey_tables :
  Zkqac_rng.Prng.t ->
  space:Zkqac_core.Keyspace.t ->
  lineitem_rows:int ->
  order_rows:int ->
  policies:Expr.t array ->
  Zkqac_core.Record.t list * Zkqac_core.Record.t list
(** 1D tables over orderkey for the Q12-style join: (lineitem side, orders
    side), lineitems merged per orderkey. *)

val range_query :
  Zkqac_rng.Prng.t -> space:Zkqac_core.Keyspace.t -> frac:float -> Zkqac_core.Box.t
(** A random query box covering approximately [frac] of the key space
    (the paper's "query range = 0.03%..1% of the data space"). *)

val user_for_fraction :
  Zkqac_rng.Prng.t ->
  roles:Zkqac_policy.Attr.t list ->
  policies:Expr.t array ->
  frac:float ->
  Zkqac_policy.Attr.Set.t
(** A role set under which approximately [frac] of the policy pool is
    satisfied (the paper's "roles that can access 20% of the records"),
    found by sampling candidate subsets and keeping the closest. *)
