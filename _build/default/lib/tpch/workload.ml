module Prng = Zkqac_rng.Prng
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Record = Zkqac_core.Record
module Keyspace = Zkqac_core.Keyspace
module Box = Zkqac_core.Box

type policy_config = {
  num_policies : int;
  num_roles : int;
  or_fanin : int;
  and_fanin : int;
}

let default_policies = { num_policies = 10; num_roles = 10; or_fanin = 3; and_fanin = 2 }

let gen_policies rng cfg =
  let roles = Universe.roles ~prefix:"Role" cfg.num_roles in
  let role_arr = Array.of_list roles in
  (* Distinct policies: re-draw on canonical-form collision. *)
  let seen = Hashtbl.create cfg.num_policies in
  let rec fresh tries =
    let p = Expr.random rng ~roles:role_arr ~or_fanin:cfg.or_fanin ~and_fanin:cfg.and_fanin in
    let key = Expr.to_string (Expr.canonical p) in
    if Hashtbl.mem seen key && tries < 200 then fresh (tries + 1)
    else begin
      Hashtbl.replace seen key ();
      p
    end
  in
  (roles, Array.init cfg.num_policies (fun _ -> fresh 0))

(* Discretize a raw value in [0, domain) into [0, side). *)
let bucket ~domain ~side v = min (side - 1) (v * side / domain)

let lineitem_records rng ~space ~rows ~policies =
  if Keyspace.dims space <> 3 then invalid_arg "Workload.lineitem_records: need 3 dims";
  let side = Keyspace.side space in
  let rows = Rows.lineitems rng ~n:rows ~max_orderkey:(max 1 (rows / 4)) in
  (* Merge rows into super-records per discretized key (Appendix E). *)
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (l : Rows.lineitem) ->
      let key =
        [| bucket ~domain:Rows.shipdate_days ~side l.Rows.l_shipdate;
           bucket ~domain:11 ~side l.Rows.l_discount;
           bucket ~domain:51 ~side l.Rows.l_quantity |]
      in
      let k = Array.to_list key in
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (Rows.lineitem_payload l :: prev))
    rows;
  Hashtbl.fold
    (fun k payloads acc ->
      let key = Array.of_list k in
      let policy = policies.(Prng.int rng (Array.length policies)) in
      Record.make ~key ~value:(String.concat "\n" payloads) ~policy :: acc)
    tbl []

let orderkey_tables rng ~space ~lineitem_rows ~order_rows ~policies =
  if Keyspace.dims space <> 1 then invalid_arg "Workload.orderkey_tables: need 1 dim";
  let side = Keyspace.side space in
  let max_orderkey = side in
  let pick_policy () = policies.(Prng.int rng (Array.length policies)) in
  let lineitems = Rows.lineitems rng ~n:lineitem_rows ~max_orderkey in
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (l : Rows.lineitem) ->
      let k = l.Rows.l_orderkey - 1 in
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k (Rows.lineitem_payload l :: prev))
    lineitems;
  let lineitem_records =
    Hashtbl.fold
      (fun k payloads acc ->
        Record.make ~key:[| k |] ~value:(String.concat "\n" payloads)
          ~policy:(pick_policy ())
        :: acc)
      tbl []
  in
  let orders = Rows.orders rng ~n:order_rows ~max_orderkey in
  let order_records =
    List.map
      (fun (o : Rows.order) ->
        Record.make ~key:[| o.Rows.o_orderkey - 1 |]
          ~value:(Rows.order_payload o) ~policy:(pick_policy ()))
      orders
  in
  (lineitem_records, order_records)

let range_query rng ~space ~frac =
  let dims = Keyspace.dims space in
  let side = Keyspace.side space in
  (* Per-dimension extent: frac^(1/dims) of the side, at least one cell. *)
  let per_dim = frac ** (1.0 /. float_of_int dims) in
  let extent = max 1 (int_of_float (ceil (per_dim *. float_of_int side))) in
  let extent = min extent side in
  let alpha = Array.init dims (fun _ -> Prng.int rng (side - extent + 1)) in
  let beta = Array.map (fun a -> a + extent - 1) alpha in
  Box.of_range ~alpha ~beta

let user_for_fraction rng ~roles ~policies ~frac =
  let role_arr = Array.of_list roles in
  let n = Array.length role_arr in
  let fraction_of subset =
    let sat =
      Array.fold_left
        (fun acc p -> if Expr.eval p subset then acc + 1 else acc)
        0 policies
    in
    float_of_int sat /. float_of_int (Array.length policies)
  in
  let best = ref Attr.Set.empty in
  let best_err = ref (abs_float (0.0 -. frac)) in
  for _ = 1 to 512 do
    let subset =
      Array.to_list role_arr
      |> List.filter (fun _ -> Prng.int rng n < 3)
      |> Attr.set_of_list
    in
    let err = abs_float (fraction_of subset -. frac) in
    if err < !best_err then begin
      best := subset;
      best_err := err
    end
  done;
  !best
