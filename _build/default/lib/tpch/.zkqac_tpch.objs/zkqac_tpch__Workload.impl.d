lib/tpch/workload.ml: Array Hashtbl List Rows String Zkqac_core Zkqac_policy Zkqac_rng
