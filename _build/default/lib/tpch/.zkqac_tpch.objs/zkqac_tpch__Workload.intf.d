lib/tpch/workload.mli: Zkqac_core Zkqac_policy Zkqac_rng
