lib/tpch/rows.ml: Array List Printf String Zkqac_rng
