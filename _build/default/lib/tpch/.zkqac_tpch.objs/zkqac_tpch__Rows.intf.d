lib/tpch/rows.mli: Zkqac_rng
