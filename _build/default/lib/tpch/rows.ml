module Prng = Zkqac_rng.Prng

type lineitem = {
  l_orderkey : int;
  l_partkey : int;
  l_quantity : int;
  l_extendedprice : float;
  l_discount : int;
  l_tax : int;
  l_shipdate : int;
  l_returnflag : char;
  l_linestatus : char;
  l_shipmode : string;
  l_comment : string;
}

type order = {
  o_orderkey : int;
  o_custkey : int;
  o_totalprice : float;
  o_orderdate : int;
  o_orderpriority : string;
  o_comment : string;
}

let shipdate_days = 2526 (* 1992-01-01 .. 1998-12-01, as in dbgen *)

let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let noise_words =
  [| "carefully"; "quickly"; "furiously"; "slyly"; "blithely"; "deposits";
     "requests"; "packages"; "instructions"; "accounts"; "theodolites";
     "pinto"; "beans"; "foxes"; "ideas" |]

let comment rng =
  String.concat " "
    (List.init (2 + Prng.int rng 5) (fun _ -> Prng.pick rng noise_words))

let lineitems rng ~n ~max_orderkey =
  List.init n (fun _ ->
      let quantity = 1 + Prng.int rng 50 in
      let price = float_of_int (90000 + Prng.int rng 110000) /. 100.0 in
      {
        l_orderkey = 1 + Prng.int rng max_orderkey;
        l_partkey = 1 + Prng.int rng 200000;
        l_quantity = quantity;
        l_extendedprice = price *. float_of_int quantity /. 50.0;
        l_discount = Prng.int rng 11;
        l_tax = Prng.int rng 9;
        l_shipdate = Prng.int rng shipdate_days;
        l_returnflag = (match Prng.int rng 3 with 0 -> 'R' | 1 -> 'A' | _ -> 'N');
        l_linestatus = (if Prng.bool rng then 'O' else 'F');
        l_shipmode = Prng.pick rng ship_modes;
        l_comment = comment rng;
      })

let orders rng ~n ~max_orderkey =
  (* Distinct orderkeys, dbgen-style sparse keys. *)
  let keys = Array.init max_orderkey (fun i -> i + 1) in
  Prng.shuffle rng keys;
  let n = min n max_orderkey in
  List.init n (fun i ->
      {
        o_orderkey = keys.(i);
        o_custkey = 1 + Prng.int rng 150000;
        o_totalprice = float_of_int (10000 + Prng.int rng 50000000) /. 100.0;
        o_orderdate = Prng.int rng shipdate_days;
        o_orderpriority = Prng.pick rng priorities;
        o_comment = comment rng;
      })

let lineitem_payload l =
  Printf.sprintf "%d|%d|%d|%.2f|0.%02d|0.%02d|%d|%c|%c|%s|%s" l.l_orderkey
    l.l_partkey l.l_quantity l.l_extendedprice l.l_discount l.l_tax l.l_shipdate
    l.l_returnflag l.l_linestatus l.l_shipmode l.l_comment

let order_payload o =
  Printf.sprintf "%d|%d|%.2f|%d|%s|%s" o.o_orderkey o.o_custkey o.o_totalprice
    o.o_orderdate o.o_orderpriority o.o_comment
