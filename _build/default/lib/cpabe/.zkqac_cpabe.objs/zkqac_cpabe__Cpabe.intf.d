lib/cpabe/cpabe.mli: Zkqac_group Zkqac_hashing Zkqac_policy
