lib/cpabe/envelope.mli: Cpabe Zkqac_group Zkqac_hashing Zkqac_policy
