lib/cpabe/envelope.ml: Cpabe String Zkqac_group Zkqac_hashing Zkqac_symmetric Zkqac_util
