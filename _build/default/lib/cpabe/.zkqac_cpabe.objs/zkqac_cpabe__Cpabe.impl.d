lib/cpabe/cpabe.ml: Array List Map Option String Zkqac_bigint Zkqac_group Zkqac_hashing Zkqac_policy Zkqac_util
