(** Ciphertext-policy attribute-based encryption (Bethencourt–Sahai–Waters,
    S&P 2007) — the paper's reference [2].

    The system uses CP-ABE in two places: record contents are encrypted under
    each record's access policy, and the per-query AES key protecting the
    result + VO is wrapped under the AND of the user's claimed roles
    (Algorithm 1), which blocks impersonation.

    Access policies are the same monotone AND/OR formulas as everywhere else
    (AND = n-of-n gate, OR = 1-of-n gate in the BSW secret-sharing tree).
    Messages are elements of Gt; see {!Envelope} for byte payloads. *)

module Make (P : Zkqac_group.Pairing_intf.PAIRING) : sig
  type mk
  (** Master key (held by the data owner). *)

  type pp
  (** Public parameters. *)

  type secret_key
  (** A user's decryption key for an attribute set. *)

  type ciphertext

  val setup : Zkqac_hashing.Drbg.t -> mk * pp

  val keygen : Zkqac_hashing.Drbg.t -> mk -> pp -> Zkqac_policy.Attr.Set.t -> secret_key

  val random_message : Zkqac_hashing.Drbg.t -> pp -> P.Gt.t
  (** Uniform message in the pairing target subgroup (for hybrid KEM use). *)

  val encrypt :
    Zkqac_hashing.Drbg.t -> pp -> P.Gt.t -> policy:Zkqac_policy.Expr.t -> ciphertext

  val decrypt : pp -> secret_key -> ciphertext -> P.Gt.t option
  (** [None] when the key's attributes do not satisfy the ciphertext
      policy. *)

  val ciphertext_size : ciphertext -> int

  val ciphertext_to_bytes : ciphertext -> string
  val ciphertext_of_bytes : string -> ciphertext option
end
