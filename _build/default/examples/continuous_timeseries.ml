(* Continuous query attributes under the relaxed model (Section 9.2).

   A sensor event log is keyed by timestamp — a continuous attribute with no
   practical discretization grid. Under access-policy confidentiality the DO
   signs one pseudo-region per gap between consecutive events, so range
   queries are answered with event proofs + gap proofs. The key distribution
   is disclosed (that is the model's relaxation) but contents and policies of
   inaccessible events are not.

   Run with:  dune exec examples/continuous_timeseries.exe *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Cont = Zkqac_core.Continuous.Make (Backend)
module Vo = Zkqac_core.Vo.Make (Backend)
module Record = Zkqac_core.Record
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg

let () =
  let drbg = Drbg.create ~seed:"timeseries" in
  let msk, mvk = Abs.setup drbg in
  let roles = [ "Operator"; "Maintenance"; "Auditor" ] in
  let universe = Universe.create roles in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  (* (unix-ish timestamp, event, policy) -- timestamps are sparse and
     irregular: no grid. *)
  let events =
    [ (1_700_000_012, "pump A started", "Operator");
      (1_700_003_615, "pressure spike 4.2 bar", "Operator | Auditor");
      (1_700_009_401, "valve 7 serviced", "Maintenance");
      (1_700_011_000, "pump A stopped", "Operator");
      (1_700_040_777, "calibration drift logged", "Maintenance & Auditor") ]
  in
  let records =
    List.map
      (fun (ts, ev, pol) ->
        Record.make ~key:[| ts |] ~value:ev ~policy:(Expr.of_string pol))
      events
  in
  let log = Cont.build drbg ~mvk ~sk ~universe records in
  Printf.printf "signed %d events + %d gap regions (%d signatures total)\n"
    (List.length events)
    (List.length events + 1)
    (Cont.num_signatures log);

  let scan name user lo hi =
    let user = Attr.set_of_list user in
    let vo = Cont.range_vo drbg ~mvk log ~user ~lo ~hi in
    match Cont.verify_range ~mvk ~t_universe:universe ~user ~lo ~hi vo with
    | Error e ->
      Printf.printf "%-22s [%d, %d] VERIFY FAILED: %s\n" name lo hi
        (Vo.error_to_string e)
    | Ok events ->
      let gaps =
        List.length (List.filter (function Cont.Gap _ -> true | _ -> false) vo)
      in
      Printf.printf "%-22s [%d, %d]: %d readable event(s), %d entries (%d gap proofs)\n"
        name lo hi (List.length events) (List.length vo) gaps;
      List.iter
        (fun (r : Record.t) -> Printf.printf "    t=%d  %s\n" r.Record.key.(0) r.Record.value)
        events
  in
  scan "operator, full day:" [ "Operator" ] 1_700_000_000 1_700_086_400;
  scan "auditor, full day:" [ "Auditor" ] 1_700_000_000 1_700_086_400;
  scan "maintenance, morning:" [ "Maintenance" ] 1_700_000_000 1_700_010_000;
  scan "operator, quiet hour:" [ "Operator" ] 1_700_020_000 1_700_030_000;

  (* Equality probe in a gap: the signed region proves "no event here". *)
  let user = Attr.Set.singleton "Operator" in
  (match Cont.equality_vo drbg ~mvk log ~user 1_700_005_000 with
   | Cont.Gap { lo = Some lo; hi = Some hi; _ } ->
     Printf.printf
       "\npoint lookup t=1700005000: proven empty, gap (%d, %d) disclosed (relaxed model)\n"
       lo hi
   | _ -> failwith "expected a gap proof");
  print_endline "continuous_timeseries OK"
