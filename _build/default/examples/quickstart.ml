(* Quickstart: the end-to-end three-party protocol in ~60 lines.

   A data owner outsources an access-controlled table; a user issues an
   authenticated range query; the response is verified for soundness and
   completeness and the accessible contents are decrypted.

   Run with:  dune exec examples/quickstart.exe *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module System = Zkqac_core.System.Make (Backend)
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr

let () =
  (* An 8x8 key space over two discrete query attributes. *)
  let space = Keyspace.create ~dims:2 ~depth:3 in
  let policy = Expr.of_string in
  let records =
    [
      { System.key = [| 1; 2 |]; content = "alpha"; policy = policy "RoleA" };
      { System.key = [| 3; 4 |]; content = "bravo"; policy = policy "RoleA & RoleB" };
      { System.key = [| 5; 1 |]; content = "charlie"; policy = policy "RoleB" };
      { System.key = [| 6; 6 |]; content = "delta"; policy = policy "RoleA | RoleC" };
    ]
  in
  (* Data-owner setup: keys, CP-ABE encryption, AP2G-tree signing. *)
  let owner, server =
    System.setup ~seed:"quickstart" ~space ~roles:[ "RoleA"; "RoleB"; "RoleC" ]
      records
  in
  (* Alice holds RoleA. *)
  let alice = System.register_user owner (Attr.set_of_list [ "RoleA" ]) in
  let query = Box.of_range ~alpha:[| 0; 0 |] ~beta:[| 7; 7 |] in
  (* The service provider answers with results + a zero-knowledge VO,
     sealed so only a genuine RoleA holder can read it. *)
  let response =
    System.range_query server ~claimed_roles:(System.user_roles alice) query
  in
  Printf.printf "response size: %d bytes\n" (System.response_size response);
  match System.open_and_verify alice ~query response with
  | Error e -> Printf.eprintf "verification FAILED: %s\n" e; exit 1
  | Ok v ->
    Printf.printf "verified: %d VO entries (%d bytes), %d accessible records\n"
      v.System.vo_entries v.System.vo_size (List.length v.System.results);
    List.iter
      (fun (key, content) ->
        Printf.printf "  key (%d,%d) -> %s\n" key.(0) key.(1) content)
      v.System.results;
    (* Alice sees alpha and delta; bravo and charlie are inaccessible and the
       proof reveals nothing about them -- not even that they exist. *)
    assert (List.length v.System.results = 2);
    print_endline "quickstart OK"
