(* Medical-records scenario from the paper's introduction: patients authorize
   access to their records "only to senior researchers or doctors specializing
   in cancer". Shows:

   - fine-grained attribute policies enforced cryptographically;
   - equality queries whose negative answers are indistinguishable between
     "no such patient" and "patient record not accessible to you";
   - hierarchical role assignment (Section 8.1) shrinking the inaccessible
     predicate.

   Run with:  dune exec examples/medical_records.exe *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Equality = Zkqac_core.Equality.Make (Backend)
module Vo = Zkqac_core.Vo.Make (Backend)
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Hierarchy = Zkqac_policy.Hierarchy
module Drbg = Zkqac_hashing.Drbg

let roles =
  [ "Doctor"; "Doctor.Oncology"; "Doctor.Cardiology"; "Researcher";
    "Researcher.Senior"; "Nurse" ]

(* Role hierarchy: a specialty implies the base role. *)
let hierarchy =
  Hierarchy.create
    [ ("Doctor.Oncology", "Doctor"); ("Doctor.Cardiology", "Doctor");
      ("Researcher.Senior", "Researcher") ]

let patients =
  (* patient id (query key), diagnosis, access policy *)
  [
    (3, "melanoma stage II", "Doctor.Oncology | Researcher.Senior");
    (7, "arrhythmia", "Doctor.Cardiology");
    (12, "melanoma stage I", "Doctor.Oncology | Researcher.Senior");
    (20, "hypertension", "Doctor");
    (28, "post-op care", "Nurse | Doctor");
  ]

let () =
  let drbg = Drbg.create ~seed:"medical" in
  let msk, mvk = Abs.setup drbg in
  let universe = Universe.create roles in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let space = Keyspace.create ~dims:1 ~depth:5 in
  let records =
    List.map
      (fun (id, diag, pol) ->
        Record.make ~key:[| id |] ~value:diag
          ~policy:(Hierarchy.augment_policy hierarchy (Expr.of_string pol)))
      patients
  in
  let tree =
    Ap2g.build drbg ~mvk ~sk ~space ~universe ~hierarchy ~pseudo_seed:"medical"
      records
  in
  let flat = Equality.of_ap2g tree in

  let show_user name user =
    Printf.printf "\n== %s (roles: %s) ==\n" name
      (String.concat ", " (Attr.Set.elements user));
    let user = Hierarchy.close_user hierarchy user in
    (* Range query over all patient ids. *)
    let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 31 |] in
    let vo, stats = Ap2g.range_vo drbg ~mvk tree ~user query in
    (match Ap2g.verify ~mvk ~t_universe:universe ~hierarchy ~user ~query vo with
     | Error e -> Printf.printf "  VERIFY FAILED: %s\n" (Vo.error_to_string e)
     | Ok rs ->
       Printf.printf "  verified scan: %d accessible record(s), %d VO entries, %d relaxations\n"
         (List.length rs) (List.length vo) stats.Ap2g.relax_calls;
       List.iter
         (fun (r : Record.t) ->
           Printf.printf "    patient %d: %s\n" r.Record.key.(0) r.Record.value)
         rs);
    (* Equality probes: a real-but-hidden patient vs a non-existent id give
       the same answer shape. *)
    List.iter
      (fun id ->
        let entry = Equality.query_vo drbg ~mvk flat ~user [| id |] in
        match
          Equality.verify_equality ~mvk ~t_universe:universe ~user ~key:[| id |] entry
        with
        | Ok (Equality.Result r) ->
          Printf.printf "  patient %2d -> %s\n" id r.Record.value
        | Ok Equality.Denied ->
          Printf.printf "  patient %2d -> no accessible record (exists? cannot tell)\n" id
        | Error e -> Printf.printf "  patient %2d -> VERIFY FAILED: %s\n" id (Vo.error_to_string e))
      [ 3; 7; 13 (* non-existent *) ]
  in
  show_user "Dr. Chen, oncologist" (Attr.set_of_list [ "Doctor.Oncology" ]);
  show_user "Dr. Patel, cardiologist" (Attr.set_of_list [ "Doctor.Cardiology" ]);
  show_user "Sam, junior researcher" (Attr.set_of_list [ "Researcher" ]);

  (* The Section 8.1 payoff: the cardiologist's inaccessible predicate with
     the hierarchy vs without it. *)
  let user = Attr.set_of_list [ "Doctor.Cardiology" ] in
  let reduced = Hierarchy.super_policy hierarchy universe ~user in
  let flat_sp = Universe.super_policy universe ~user:(Hierarchy.close_user hierarchy user) in
  Printf.printf
    "\nhierarchical role assignment: inaccessible predicate %d roles -> %d roles\n"
    (Expr.num_leaves flat_sp) (Expr.num_leaves reduced);
  print_endline "medical_records OK"
