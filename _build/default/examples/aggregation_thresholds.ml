(* Extensions beyond the paper, together: k-of-n threshold policy gates and
   verified aggregation (the paper's stated future work).

   A payroll table is protected with the policy "2of(HR, Finance, Audit)" --
   any two of the three departments can see salaries, no single one can.
   An auditor paired with finance runs a verified SUM/AVG over a range; the
   verification guarantees the aggregate covers exactly the accessible
   records in range (nothing dropped, nothing injected).

   Run with:  dune exec examples/aggregation_thresholds.exe *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Aggregate = Zkqac_core.Aggregate.Make (Backend)
module Vo = Zkqac_core.Vo.Make (Backend)
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg

let () =
  let drbg = Drbg.create ~seed:"payroll" in
  let msk, mvk = Abs.setup drbg in
  let roles = [ "HR"; "Finance"; "Audit"; "Engineering" ] in
  let universe = Universe.create roles in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let space = Keyspace.create ~dims:1 ~depth:4 in

  (* Employee id -> salary; leadership salaries additionally require HR. *)
  let two_of_three = Expr.of_string "2of(HR, Finance, Audit)" in
  let leadership = Expr.of_string "HR & 2of(HR, Finance, Audit)" in
  let payroll =
    [ (1, 52_000, two_of_three); (3, 61_500, two_of_three);
      (5, 58_250, two_of_three); (8, 49_000, two_of_three);
      (11, 95_000, leadership); (14, 120_000, leadership) ]
  in
  let records =
    List.map
      (fun (id, salary, policy) ->
        Record.make ~key:[| id |] ~value:(string_of_int salary) ~policy)
      payroll
  in
  let tree = Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"pay" records in
  let query = Box.of_range ~alpha:[| 0 |] ~beta:[| 15 |] in
  let extract (r : Record.t) = float_of_string_opt r.Record.value in

  let report name user =
    let user = Attr.set_of_list user in
    let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
    (* Batched verification: all inaccessibility proofs checked at once. *)
    match
      Aggregate.sum ~batch:drbg ~mvk ~tree_universe:universe ~user ~query ~extract vo
    with
    | Error e -> Printf.printf "%-28s VERIFY FAILED: %s\n" name (Vo.error_to_string e)
    | Ok { Aggregate.value = total; over } ->
      if over = 0 then Printf.printf "%-28s no accessible salaries\n" name
      else
        Printf.printf "%-28s %d salaries, total %.0f, avg %.0f (verified)\n" name
          over total (total /. float_of_int over)
  in
  report "HR alone:" [ "HR" ];
  report "Finance alone:" [ "Finance" ];
  report "Engineering:" [ "Engineering" ];
  report "Finance + Audit:" [ "Finance"; "Audit" ];
  report "HR + Finance:" [ "HR"; "Finance" ];

  (* The integrity payoff: if the SP drops a salary from the response, the
     aggregate is refused rather than silently wrong. *)
  let user = Attr.set_of_list [ "Finance"; "Audit" ] in
  let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user query in
  let cooked = List.filter (function Vo.Accessible _ -> false | _ -> true) vo in
  (match Aggregate.sum ~mvk ~tree_universe:universe ~user ~query ~extract cooked with
   | Error _ -> print_endline "\ncooked response (salary withheld) rejected: aggregate integrity holds"
   | Ok _ ->
     print_endline "cooked response accepted!?";
     exit 1);
  print_endline "aggregation_thresholds OK"
