(* The enumeration attack of the introduction, and why zero-knowledge VOs
   defeat it.

   An adversary with few roles issues overlapping range queries trying to
   learn the distribution of keys it cannot access (e.g. which diseases
   exist in a medical database). Against a naive scheme that returns
   "encrypted but visible" inaccessible records, the attack reads off the
   hidden key distribution directly. Against the AP2G-tree's zero-knowledge
   VOs, the transcript the attacker sees is *identical* to the transcript
   over a database in which its inaccessible records never existed — so no
   sequence of queries can tell the two worlds apart.

   Run with:  dune exec examples/enumeration_attack.exe *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Vo = Zkqac_core.Vo.Make (Backend)
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Expr = Zkqac_policy.Expr
module Attr = Zkqac_policy.Attr
module Universe = Zkqac_policy.Universe
module Drbg = Zkqac_hashing.Drbg

let () =
  let drbg = Drbg.create ~seed:"enum" in
  let msk, mvk = Abs.setup drbg in
  let roles = [ "Public"; "Oncology"; "Cardiology" ] in
  let universe = Universe.create roles in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in
  let space = Keyspace.create ~dims:1 ~depth:5 in

  (* World 1: the real database. Hidden specialist records cluster at keys
     8..15 -- that clustering is exactly what the attacker wants to learn. *)
  let world_real =
    List.map
      (fun (k, v, p) -> Record.make ~key:[| k |] ~value:v ~policy:(Expr.of_string p))
      [ (2, "public-2", "Public"); (9, "onco-9", "Oncology");
        (10, "onco-10", "Oncology"); (11, "onco-11", "Oncology");
        (13, "onco-13", "Oncology"); (25, "public-25", "Public") ]
  in
  (* World 2: the simulator's database -- the attacker-inaccessible records
     simply do not exist (Definition 7.5's ideal game). *)
  let world_ideal =
    List.filter
      (fun (r : Record.t) -> Expr.eval r.Record.policy (Attr.Set.singleton "Public"))
      world_real
  in
  let tree_real =
    Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"w1" world_real
  in
  let tree_ideal =
    Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"w2" world_ideal
  in

  let attacker = Attr.Set.singleton "Public" in
  (* The attack: sweep overlapping windows over the key space. *)
  let windows = List.init 29 (fun i -> (i, i + 3)) in
  let transcript tree =
    List.map
      (fun (lo, hi) ->
        let query = Box.of_range ~alpha:[| lo |] ~beta:[| hi |] in
        let vo, _ = Ap2g.range_vo drbg ~mvk tree ~user:attacker query in
        (match Ap2g.verify ~mvk ~t_universe:universe ~user:attacker ~query vo with
         | Ok _ -> ()
         | Error e -> failwith (Vo.error_to_string e));
        (* Everything the attacker observes, minus the (randomized) group
           elements: entry kinds, regions, plaintext results. *)
        List.map
          (function
            | Vo.Accessible { region; record; _ } ->
              ("result", Box.to_string region, record.Record.value)
            | Vo.Inaccessible_leaf { region; _ } -> ("leaf", Box.to_string region, "")
            | Vo.Inaccessible_node { region; _ } -> ("node", Box.to_string region, ""))
          vo)
      windows
  in
  let t_real = transcript tree_real in
  let t_ideal = transcript tree_ideal in
  Printf.printf "issued %d overlapping window queries per world\n" (List.length windows);
  if t_real = t_ideal then
    print_endline
      "attack transcript over the REAL database is identical to the transcript\n\
       over the world where the hidden records never existed:\n\
       the enumeration attack learns NOTHING. (zero-knowledge holds)"
  else begin
    print_endline "transcripts differ -- zero-knowledge violated!";
    exit 1
  end;

  (* Contrast: what a non-ZK scheme (returning inaccessible records in
     encrypted form, MHT-style) would have leaked. *)
  let leaked =
    List.filter_map
      (fun (r : Record.t) ->
        if Expr.eval r.Record.policy attacker then None else Some r.Record.key.(0))
      world_real
  in
  Printf.printf
    "\na Merkle-tree baseline would have revealed hidden keys at positions: %s\n"
    (String.concat ", " (List.map string_of_int leaked));
  print_endline "enumeration_attack OK"
