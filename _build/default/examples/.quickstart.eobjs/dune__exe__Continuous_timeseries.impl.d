examples/continuous_timeseries.ml: Array List Printf Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_policy
