examples/quickstart.ml: Array List Printf Zkqac_core Zkqac_group Zkqac_policy
