examples/aggregation_thresholds.ml: List Printf Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_policy
