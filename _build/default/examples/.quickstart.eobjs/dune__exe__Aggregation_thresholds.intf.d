examples/aggregation_thresholds.mli:
