examples/tpch_range_join.ml: List Printf String Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_parallel Zkqac_policy Zkqac_rng Zkqac_tpch
