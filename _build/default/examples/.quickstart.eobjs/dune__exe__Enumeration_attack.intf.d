examples/enumeration_attack.mli:
