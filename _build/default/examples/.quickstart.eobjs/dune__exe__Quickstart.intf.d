examples/quickstart.mli:
