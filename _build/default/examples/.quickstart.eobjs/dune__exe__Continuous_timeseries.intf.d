examples/continuous_timeseries.mli:
