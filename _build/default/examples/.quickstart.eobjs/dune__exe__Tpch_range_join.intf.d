examples/tpch_range_join.mli:
