examples/enumeration_attack.ml: Array List Printf String Zkqac_abs Zkqac_core Zkqac_group Zkqac_hashing Zkqac_policy
