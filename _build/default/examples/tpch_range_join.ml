(* The paper's experimental workload in miniature: a TPC-H Lineitem table
   over (shipdate, discount, quantity), Q6-style authenticated range queries
   comparing the Basic approach against the AP2G-tree, and a Q12-style
   authenticated equi-join of Lineitem and Orders on orderkey.

   Run with:  dune exec examples/tpch_range_join.exe *)

module Backend = (val Zkqac_group.Backend.instantiate Zkqac_group.Backend.Mock)
module Abs = Zkqac_abs.Abs.Make (Backend)
module Ap2g = Zkqac_core.Ap2g.Make (Backend)
module Equality = Zkqac_core.Equality.Make (Backend)
module Join = Zkqac_core.Join.Make (Backend)
module Vo = Zkqac_core.Vo.Make (Backend)
module Box = Zkqac_core.Box
module Keyspace = Zkqac_core.Keyspace
module Record = Zkqac_core.Record
module Expr = Zkqac_policy.Expr
module Universe = Zkqac_policy.Universe
module Workload = Zkqac_tpch.Workload
module Drbg = Zkqac_hashing.Drbg
module Prng = Zkqac_rng.Prng
module Pool = Zkqac_parallel.Pool

let () =
  let rng = Prng.create 2018 in
  let drbg = Drbg.create ~seed:"tpch-example" in
  let roles, policies = Workload.gen_policies rng Workload.default_policies in
  let universe = Universe.create roles in
  let msk, mvk = Abs.setup drbg in
  let sk = Abs.keygen drbg msk (Universe.attrs universe) in

  (* --- Q6-style range over (shipdate, discount, quantity) --- *)
  let space = Keyspace.create ~dims:3 ~depth:3 in
  let records = Workload.lineitem_records rng ~space ~rows:2000 ~policies in
  Printf.printf "lineitem: %d rows -> %d distinct-key records over a %dx%dx%d space\n"
    2000 (List.length records) (Keyspace.side space) (Keyspace.side space)
    (Keyspace.side space);
  let (tree, build_t) =
    Pool.time (fun () ->
        Ap2g.build drbg ~mvk ~sk ~space ~universe ~pseudo_seed:"tpch" records)
  in
  let st = Ap2g.stats tree in
  Printf.printf "AP2G-tree: %d leaf + %d node signatures in %.2fs (%.1f KB signatures)\n"
    st.Ap2g.leaf_signatures st.Ap2g.node_signatures build_t
    (float_of_int st.Ap2g.signature_bytes /. 1024.);
  let flat = Equality.of_ap2g tree in
  let user = Workload.user_for_fraction rng ~roles ~policies ~frac:0.2 in
  Printf.printf "user roles (≈20%% of policies): %s\n"
    (String.concat ", " (Zkqac_policy.Attr.Set.elements user));

  List.iter
    (fun frac ->
      let query = Workload.range_query rng ~space ~frac in
      let vo_g, st_g = Ap2g.range_vo drbg ~mvk tree ~user query in
      let vo_b, st_b = Equality.range_vo drbg ~mvk flat ~user query in
      (match Ap2g.verify ~mvk ~t_universe:universe ~user ~query vo_g with
       | Ok rs ->
         Printf.printf
           "range %.2f%%: %d results | AP2G: %4d entries %7.1f KB %4d relax %.3fs | Basic: %4d entries %7.1f KB %4d relax %.3fs\n"
           (frac *. 100.) (List.length rs) (List.length vo_g)
           (float_of_int (Vo.size vo_g) /. 1024.)
           st_g.Ap2g.relax_calls st_g.Ap2g.sp_time (List.length vo_b)
           (float_of_int (Vo.size vo_b) /. 1024.)
           st_b.Ap2g.relax_calls st_b.Ap2g.sp_time
       | Error e -> Printf.printf "VERIFY FAILED: %s\n" (Vo.error_to_string e));
      match Equality.verify_range ~mvk ~t_universe:universe ~user ~query vo_b with
      | Ok _ -> ()
      | Error e -> Printf.printf "BASIC VERIFY FAILED: %s\n" (Vo.error_to_string e))
    [ 0.01; 0.05; 0.25 ];

  (* --- Q12-style join on orderkey --- *)
  let jspace = Keyspace.create ~dims:1 ~depth:8 in
  let li, ord =
    Workload.orderkey_tables rng ~space:jspace ~lineitem_rows:600 ~order_rows:200
      ~policies
  in
  let r_tree = Ap2g.build drbg ~mvk ~sk ~space:jspace ~universe ~pseudo_seed:"li" li in
  let s_tree = Ap2g.build drbg ~mvk ~sk ~space:jspace ~universe ~pseudo_seed:"or" ord in
  Printf.printf "\njoin tables: %d lineitem keys, %d orders\n" (List.length li)
    (List.length ord);
  let query = Box.of_range ~alpha:[| 0 |] ~beta:[| Keyspace.side jspace - 1 |] in
  let jvo, jst = Join.join_vo drbg ~mvk ~r:r_tree ~s:s_tree ~user query in
  (match Join.verify ~mvk ~t_universe:universe ~user ~query jvo with
   | Ok pairs ->
     Printf.printf
       "join over full range: %d verified pairs, %d VO entries (%.1f KB), %d relaxations, %.3fs\n"
       (List.length pairs) (List.length jvo)
       (float_of_int (Join.size jvo) /. 1024.)
       jst.Join.relax_calls jst.Join.sp_time
   | Error e -> Printf.printf "JOIN VERIFY FAILED: %s\n" (Vo.error_to_string e));
  print_endline "tpch_range_join OK"
